"""Network nodes.

A node hosts sockets and can crash.  A crashed node silently drops all
traffic addressed to it and its sockets stop delivering — matching the
fail-stop model the paper assumes for servers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import AddressInUseError, NetworkError
from repro.net.address import Endpoint, NodeId
from repro.net.packet import Datagram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network
    from repro.net.udp import UdpSocket


class Node:
    """A host in the simulated network."""

    def __init__(self, network: "Network", node_id: NodeId, name: str) -> None:
        self.network = network
        self.node_id = node_id
        self.name = name
        self.alive = True
        self._sockets: Dict[int, "UdpSocket"] = {}
        self._next_ephemeral = 49152
        # Process-scheduling noise: the paper notes "additional delay
        # may be introduced by process scheduling since we do not use a
        # real-time operating system".  When positive, every delivered
        # datagram waits a uniform [0, noise] extra before the
        # application sees it.
        self.scheduling_noise_s = 0.0

    # ------------------------------------------------------------------
    # Socket management
    # ------------------------------------------------------------------
    def bind(self, socket: "UdpSocket", port: Optional[int]) -> int:
        """Register ``socket`` on ``port`` (or an ephemeral port if None)."""
        if not self.alive:
            raise NetworkError(f"node {self.name} is down")
        if port is None:
            port = self._allocate_ephemeral()
        if port in self._sockets:
            raise AddressInUseError(f"port {port} already bound on node {self.name}")
        self._sockets[port] = socket
        return port

    def unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def socket_on(self, port: int) -> Optional["UdpSocket"]:
        return self._sockets.get(port)

    def _allocate_ephemeral(self) -> int:
        while self._next_ephemeral in self._sockets:
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: close every socket and stop receiving."""
        self.alive = False
        for socket in list(self._sockets.values()):
            socket.close()
        self._sockets.clear()
        self.network.note_change()

    def restart(self) -> None:
        """Bring a crashed node back (with no sockets — fresh process)."""
        self.alive = True
        self.network.note_change()

    # ------------------------------------------------------------------
    # Datagram plumbing (called by the Network)
    # ------------------------------------------------------------------
    def deliver(self, datagram: Datagram) -> None:
        if not self.alive:
            return
        if self.scheduling_noise_s > 0:
            delay = self.network.sim.rng(f"node.sched.{self.node_id}").uniform(
                0.0, self.scheduling_noise_s
            )
            self.network.sim.call_after(delay, self._deliver_now, datagram)
            return
        self._deliver_now(datagram)

    def _deliver_now(self, datagram: Datagram) -> None:
        if not self.alive:
            return
        socket = self._sockets.get(datagram.dst.port)
        if socket is not None:
            socket.handle_datagram(datagram)

    def endpoint(self, port: int) -> Endpoint:
        return Endpoint(self.node_id, port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<Node {self.node_id} {self.name!r} {state}>"
