"""Precomputed batched transfers over deterministic paths.

A :class:`BurstTransfer` is the data-plane fast path for one batch
window of frames from one sender to one receiver.  At creation time it
resolves the route once, mirrors the per-hop transmitter arithmetic of
:class:`repro.net.link._Direction.transmit` (FIFO serialization,
propagation delay, time-bounded tail drop) for every frame, and then
replays the outcome with a **single recycled event handle** stepping
through the precomputed timeline — one cheap event per frame instead of
a tick plus one transmit/deliver pair per hop.

Eligibility is strict: every hop must be *clean* (zero loss, jitter and
reorder probability, no injected fault), every transit node alive, and
the destination free of scheduling noise.  Under those conditions the
precomputed delivery times are bit-identical to what per-frame sends
would produce — same floating-point operations in the same order — so
the fast and slow paths are interchangeable on loss-free topologies.

Two deliberate relaxations, both invisible to protocols:

* per-hop ``LinkStats`` and socket counters are settled at each frame's
  *delivery* time rather than its send time (end-of-run totals match
  exactly; a mid-flight reader can lag by one path latency);
* intermediate-hop ``net.deliver`` firehose events are emitted at the
  final delivery time (the default telemetry export excludes the
  firehose, so exported streams still match byte for byte).

Mid-window interruptions are handled two ways: the owner can *revoke*
frames whose send time has not yet arrived (rate changed, pause, crash
of the sender), and the transfer *aborts itself* when the network's
``state_version`` moves and the revalidated path is no longer the same
clean route — remaining frames are conservatively dropped and the owner
notified so it can fall back to per-frame transmission.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.net.packet import HEADER_BYTES, Datagram

#: Timeline record kinds.
_DELIVER = 0
_DROP = 1


class _Record:
    """One precomputed timeline step (a delivery or a tail drop)."""

    __slots__ = (
        "time", "send_time", "entry_idx", "kind", "payload", "size_bytes",
        "crossed", "drop_direction",
    )

    def __init__(self, time, send_time, entry_idx, kind, payload, size_bytes,
                 crossed, drop_direction):
        self.time = time
        self.send_time = send_time
        self.entry_idx = entry_idx
        self.kind = kind
        self.payload = payload
        self.size_bytes = size_bytes
        # Directions fully crossed, as (direction, tx_free_after) pairs.
        self.crossed = crossed
        self.drop_direction = drop_direction


class BurstTransfer:
    """Replays a precomputed window of sends; see module docstring.

    Do not construct directly — use :func:`start_burst`, which returns
    ``None`` when the path is not eligible for the fast path.
    """

    def __init__(
        self,
        network,
        socket,
        dst,
        hops,
        entries: Sequence[Tuple[float, Any, int]],
        on_deliver: Optional[Callable[[Any, int], None]],
        on_abort: Optional[Callable[[], None]],
        carry_tx_free=None,
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.socket = socket
        self.dst = dst
        self._hops = hops
        self._dst_node = network.nodes[dst.node]
        self._version = network.state_version
        self._on_deliver = on_deliver
        self._on_abort = on_abort
        self.aborted = False
        self.finished = False
        self.delivered = 0
        self.dropped = 0
        self.revoked = 0
        #: Each hop's transmitter-free time after the whole window, for
        #: seeding a back-to-back follow-up transfer (see carry_tx_free).
        self.projected_tx_free = {}
        self._records: List[_Record] = self._precompute(entries, carry_tx_free)
        self._cursor = 0
        if self._records:
            self._handle = self.sim.call_at(self._records[0].time, self._step)
        else:
            self._handle = None
            self.finished = True

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _precompute(self, entries, carry_tx_free) -> List[_Record]:
        # Snapshot each hop's transmitter state; the walk below advances
        # the snapshots exactly as per-frame transmits would have.  A
        # carry from the previous window overrides the (delivery-lagged)
        # live value, so boundary-spanning queues stay exact.
        tx_free = []
        for direction, _ in self._hops:
            free = direction._tx_free_at
            if carry_tx_free is not None:
                carried = carry_tx_free.get(direction)
                if carried is not None and carried > free:
                    free = carried
            tx_free.append(free)
        records = []
        for entry_idx, (send_time, payload, size_bytes) in enumerate(entries):
            wire = size_bytes + HEADER_BYTES
            at = send_time
            crossed = []
            drop_direction = None
            drop_time = 0.0
            for hop_idx, (direction, _to_node) in enumerate(self._hops):
                params = direction.params
                serialization = wire * 8.0 / params.bandwidth_bps
                free = tx_free[hop_idx]
                queue_ahead_s = max(0.0, free - at)
                if (
                    serialization > 0
                    and queue_ahead_s > params.queue_packets * serialization
                ):
                    drop_direction = direction
                    drop_time = at
                    break
                start_tx = at if at > free else free
                free = start_tx + serialization
                tx_free[hop_idx] = free
                crossed.append((direction, free))
                at = free + params.delay_s
            if drop_direction is not None:
                records.append(_Record(
                    drop_time, send_time, entry_idx, _DROP, payload,
                    size_bytes, crossed, drop_direction,
                ))
            else:
                records.append(_Record(
                    at, send_time, entry_idx, _DELIVER, payload,
                    size_bytes, crossed, None,
                ))
        records.sort(key=lambda record: record.time)
        self.projected_tx_free = {
            direction: tx_free[hop_idx]
            for hop_idx, (direction, _to_node) in enumerate(self._hops)
        }
        return records

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _release(self) -> None:
        # Break the burst <-> handle <-> bound-method reference cycle
        # and drop the window's records the moment the transfer ends.
        # Ten thousand bursts per simulated minute otherwise pile up a
        # million-object cyclic graph for the garbage collector to trace
        # (full collections dominated thousand-client wall time).
        self._records = []
        self._handle = None
        self._on_deliver = None
        self._on_abort = None

    def _step(self) -> None:
        records = self._records
        if self._cursor >= len(records):
            self.finished = True
            self._release()
            return
        network = self.network
        if network.state_version != self._version and not self._revalidate():
            self._abort()
            return
        record = records[self._cursor]
        now = self.sim.now
        if record.time > now:
            # A revocation removed the step this firing targeted; just
            # retarget the recycled handle at the next survivor.
            self._handle = self.sim.reschedule(self._handle, record.time)
            return
        self._cursor += 1
        self._settle(record)
        if record.kind == _DELIVER:
            self.delivered += 1
            if self._on_deliver is not None:
                self._on_deliver(record.payload, record.size_bytes)
            datagram = Datagram(
                src=self.socket.endpoint,
                dst=self.dst,
                payload=record.payload,
                size_bytes=record.size_bytes,
            )
            self._dst_node.deliver(datagram)
        else:
            self.dropped += 1
            record.drop_direction.stats.dropped_queue += 1
            record.drop_direction._note_drop("queue")
        if self._cursor < len(records):
            self._handle = self.sim.reschedule(
                self._handle, records[self._cursor].time
            )
        else:
            self.finished = True
            self._release()

    def _settle(self, record: _Record) -> None:
        """Apply the counters a per-frame send would have accumulated."""
        wire = record.size_bytes + HEADER_BYTES
        socket = self.socket
        socket.sent_packets += 1
        socket.sent_bytes += record.size_bytes
        tel = self.sim.telemetry
        tel_active = tel.active
        for direction, tx_free_after in record.crossed:
            stats = direction.stats
            stats.sent_packets += 1
            stats.sent_bytes += wire
            stats.delivered_packets += 1
            if direction._tx_free_at < tx_free_after:
                direction._tx_free_at = tx_free_after
            if tel_active:
                tel.emit("net.deliver", link=direction.rng_name, bytes=wire)
        if record.kind == _DROP:
            # The dropping hop counts the packet as sent, not delivered,
            # and its transmitter never accepted it.
            stats = record.drop_direction.stats
            stats.sent_packets += 1
            stats.sent_bytes += wire

    def _revalidate(self) -> bool:
        """After a network change: is our route still the same clean path?"""
        network = self.network
        src_node = network.nodes[self.socket.endpoint.node]
        if not src_node.alive or self.socket.closed:
            return False
        hops = network.resolve_path(self.socket.endpoint.node, self.dst.node)
        if hops is None or len(hops) != len(self._hops):
            return False
        for (direction, to_node), (old_direction, old_to) in zip(hops, self._hops):
            if direction is not old_direction or to_node != old_to:
                return False
        if not network.path_clear(hops, self.dst.node):
            return False
        self._version = network.state_version
        return True

    def _abort(self) -> None:
        self.aborted = True
        self.finished = True
        on_abort = self._on_abort
        # The handle has just fired; dropping the reference is enough.
        self._release()
        if on_abort is not None:
            on_abort()

    # ------------------------------------------------------------------
    # Owner controls
    # ------------------------------------------------------------------
    def revoke_after(self, time: float) -> int:
        """Withdraw every frame whose *send* time is strictly after
        ``time``.  Frames already on the wire (sent at or before
        ``time``) still deliver.  Returns how many frames were revoked."""
        if self.finished:
            return 0
        entries_cut = [
            record for record in self._records[self._cursor:]
            if record.send_time > time
        ]
        if entries_cut:
            cut_ids = {id(record) for record in entries_cut}
            self._records = (
                self._records[: self._cursor]
                + [
                    record
                    for record in self._records[self._cursor:]
                    if id(record) not in cut_ids
                ]
            )
            self.revoked += len(entries_cut)
        # Every surviving frame was sent at or before ``time``, so its
        # transmitter occupancy is committed even though the lazy
        # delivery-time settlement has not caught up.  Settle it now:
        # the owner's very next send (per-frame or a fresh burst) must
        # queue behind these frames exactly as the slow path would, not
        # jump ahead of them through the stale live value.
        for record in self._records:
            for direction, tx_free_after in record.crossed:
                if direction._tx_free_at < tx_free_after:
                    direction._tx_free_at = tx_free_after
        if not entries_cut:
            return 0
        if self._cursor >= len(self._records):
            self.finished = True
            if self._handle is not None:
                self._handle.cancel()
            self._release()
        return len(entries_cut)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "aborted" if self.aborted else (
            "finished" if self.finished else "active"
        )
        return (
            f"<BurstTransfer {self.socket.endpoint}->{self.dst} "
            f"{len(self._records) - self._cursor} pending {state}>"
        )


def start_burst(
    network,
    socket,
    dst,
    entries: Sequence[Tuple[float, Any, int]],
    on_deliver: Optional[Callable[[Any, int], None]] = None,
    on_abort: Optional[Callable[[], None]] = None,
    carry_tx_free=None,
) -> Optional[BurstTransfer]:
    """Begin a batched transfer, or return None if ineligible.

    ``entries`` is a sequence of ``(send_time, payload, size_bytes)``
    with nondecreasing send times, the first at the current instant.
    Eligibility: the socket's node is alive, a route to ``dst`` exists,
    and every hop passes :meth:`Network.path_clear`.
    """
    if not entries or socket.closed:
        return None
    src = socket.endpoint.node
    if not network.nodes[src].alive:
        return None
    hops = network.resolve_path(src, dst.node)
    if hops is None or not hops:
        return None
    if not network.path_clear(hops, dst.node):
        return None
    return BurstTransfer(
        network, socket, dst, hops, entries, on_deliver, on_abort,
        carry_tx_free=carry_tx_free,
    )
