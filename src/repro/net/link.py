"""Point-to-point link model.

Each (directed) link direction models:

* **propagation delay** — fixed one-way latency;
* **jitter** — extra uniformly distributed delay per packet (this is what
  reorders packets on WAN paths);
* **loss** — independent Bernoulli drop per packet;
* **bandwidth** — bits/second; packets are serialized through a FIFO
  transmitter, so a burst experiences queueing delay exactly like a real
  interface; a bounded transmit queue drops overflowing packets
  (tail-drop), which is how congestion loss arises in the WAN scenario.

Every stochastic draw uses a link-specific named random stream, so runs
are reproducible and independent across links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import NetworkError
from repro.net.packet import Datagram
from repro.sim.core import Simulator

DeliverFn = Callable[[Datagram], None]


@dataclass(frozen=True)
class LinkParams:
    """Static characteristics of one link direction.

    ``reorder_prob``/``reorder_delay_s`` model transient route changes:
    with probability ``reorder_prob`` a packet takes a detour and arrives
    up to ``reorder_delay_s`` later than its normal delivery time, which
    puts it behind packets sent after it.  Per-packet jitter alone cannot
    reorder a 30 fps stream (frames are 33 ms apart), but route flaps on
    the Internet of the paper's era did — this knob reproduces that.
    """

    delay_s: float = 0.0002
    jitter_s: float = 0.0
    loss_prob: float = 0.0
    bandwidth_bps: float = 100e6
    queue_packets: int = 512
    reorder_prob: float = 0.0
    reorder_delay_s: float = 0.0

    def validate(self) -> None:
        if self.delay_s < 0:
            raise NetworkError(f"negative link delay {self.delay_s!r}")
        if self.jitter_s < 0:
            raise NetworkError(f"negative link jitter {self.jitter_s!r}")
        if not 0.0 <= self.loss_prob < 1.0:
            raise NetworkError(f"loss_prob must be in [0,1), got {self.loss_prob!r}")
        if self.bandwidth_bps <= 0:
            raise NetworkError(f"bandwidth must be positive, got {self.bandwidth_bps!r}")
        if self.queue_packets < 1:
            raise NetworkError(f"queue must hold >=1 packet, got {self.queue_packets!r}")
        if not 0.0 <= self.reorder_prob < 1.0:
            raise NetworkError(
                f"reorder_prob must be in [0,1), got {self.reorder_prob!r}"
            )
        if self.reorder_delay_s < 0:
            raise NetworkError(
                f"negative reorder delay {self.reorder_delay_s!r}"
            )


@dataclass(frozen=True)
class LinkFault:
    """An injected per-link impairment (see :mod:`repro.faulting`).

    Unlike :class:`LinkParams` — the link's *intrinsic* characteristics —
    a fault is transient and installed/removed at runtime by a fault
    injector.  All stochastic draws use a dedicated ``fault.``-prefixed
    random stream so installing a fault never perturbs the link's own
    streams (runs with and without faults stay comparable).

    ``drop_prob``
        Extra independent Bernoulli drop per packet.
    ``extra_delay_s`` / ``jitter_s``
        Deterministic plus uniformly random added latency per packet.
    ``duplicate_prob`` / ``duplicate_delay_s``
        Probability of delivering a second copy, and how much later the
        copy arrives (models retransmitting middleboxes / route loops).
    """

    drop_prob: float = 0.0
    extra_delay_s: float = 0.0
    jitter_s: float = 0.0
    duplicate_prob: float = 0.0
    duplicate_delay_s: float = 0.001

    def validate(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise NetworkError(
                f"fault drop_prob must be in [0,1], got {self.drop_prob!r}"
            )
        if not 0.0 <= self.duplicate_prob <= 1.0:
            raise NetworkError(
                f"fault duplicate_prob must be in [0,1], "
                f"got {self.duplicate_prob!r}"
            )
        for name in ("extra_delay_s", "jitter_s", "duplicate_delay_s"):
            if getattr(self, name) < 0:
                raise NetworkError(
                    f"fault {name} must be >= 0, got {getattr(self, name)!r}"
                )

    @property
    def is_noop(self) -> bool:
        return (
            self.drop_prob == 0.0
            and self.extra_delay_s == 0.0
            and self.jitter_s == 0.0
            and self.duplicate_prob == 0.0
        )


@dataclass
class LinkStats:
    """Per-direction counters, used by the overhead experiments."""

    sent_packets: int = 0
    sent_bytes: int = 0
    delivered_packets: int = 0
    dropped_loss: int = 0
    dropped_queue: int = 0
    detoured: int = 0
    guaranteed_packets: int = 0
    fault_dropped: int = 0
    fault_duplicated: int = 0
    fault_delayed: int = 0

    def drop_total(self) -> int:
        return self.dropped_loss + self.dropped_queue + self.fault_dropped


class _Direction:
    """One direction of a link: FIFO transmitter + lossy channel."""

    def __init__(self, sim: Simulator, params: LinkParams, rng_name: str) -> None:
        params.validate()
        self.sim = sim
        self.params = params
        self.rng_name = rng_name
        self.stats = LinkStats()
        self.up = True
        # Injected impairment (see repro.faulting); None = healthy.
        self.fault: Optional[LinkFault] = None
        # Virtual time when the transmitter finishes its current backlog.
        self._tx_free_at = 0.0
        # True when the intrinsic parameters make every stochastic draw
        # a no-op: transmissions then take a branch with no RNG lookup
        # at all.  LinkParams is frozen, so this never goes stale.
        self._params_clean = (
            params.loss_prob == 0.0
            and params.jitter_s == 0.0
            and params.reorder_prob == 0.0
        )

    def set_fault(self, fault: Optional[LinkFault]) -> None:
        if fault is not None:
            fault.validate()
            if fault.is_noop:
                fault = None
        self.fault = fault

    @property
    def clean(self) -> bool:
        """True when a transmission right now is deterministic: no loss,
        jitter or reorder draws and no injected fault.  (Tail drops can
        still happen — they are arithmetic, not stochastic.)"""
        return self._params_clean and self.fault is None

    def transmit(
        self, datagram: Datagram, deliver: DeliverFn, guaranteed: bool = False
    ) -> None:
        """Send one datagram over this direction.

        ``guaranteed`` marks a packet riding an admitted QoS reservation
        (see :mod:`repro.net.qos`): it is exempt from loss, tail drop,
        jitter and detours — it still pays propagation and
        serialization."""
        if not self.up:
            return
        self.stats.sent_packets += 1
        self.stats.sent_bytes += datagram.wire_bytes()

        # Injected faults draw from a dedicated stream so that a healthy
        # run's randomness is untouched by merely enabling the subsystem.
        fault = self.fault
        fault_extra_s = 0.0
        fault_duplicate = False
        if fault is not None:
            fault_rng = self.sim.rng(f"fault.{self.rng_name}")
            if fault.drop_prob > 0 and fault_rng.random() < fault.drop_prob:
                self.stats.fault_dropped += 1
                self._note_drop("fault")
                return
            fault_extra_s = fault.extra_delay_s
            if fault.jitter_s > 0:
                fault_extra_s += fault_rng.uniform(0.0, fault.jitter_s)
            if fault_extra_s > 0:
                self.stats.fault_delayed += 1
            if (
                fault.duplicate_prob > 0
                and fault_rng.random() < fault.duplicate_prob
            ):
                fault_duplicate = True

        serialization = datagram.wire_bytes() * 8.0 / self.params.bandwidth_bps
        now = self.sim.now
        queue_ahead_s = max(0.0, self._tx_free_at - now)
        # Tail-drop if the backlog already holds queue_packets' worth of
        # serialization time (approximating a packet-count queue using the
        # mean packet currently queued is unreliable; we bound by time:
        # queue_packets * this packet's serialization time).
        if (
            not guaranteed
            and serialization > 0
            and queue_ahead_s > self.params.queue_packets * serialization
        ):
            self.stats.dropped_queue += 1
            self._note_drop("queue")
            return
        start_tx = max(now, self._tx_free_at)
        self._tx_free_at = start_tx + serialization

        if guaranteed:
            self.stats.guaranteed_packets += 1
            arrival = self._tx_free_at + self.params.delay_s + fault_extra_s
            self._schedule_delivery(
                arrival, datagram, deliver, fault, fault_duplicate
            )
            return

        if self._params_clean:
            # Zero-overhead fast path: with loss, jitter and reorder all
            # zero, none of the draws below can change anything — skip
            # the RNG lookup entirely.  (Merely fetching a stream never
            # advances it, so slow- and fast-path runs stay identical.)
            arrival = self._tx_free_at + self.params.delay_s + fault_extra_s
            self._schedule_delivery(
                arrival, datagram, deliver, fault, fault_duplicate
            )
            return

        rng = self.sim.rng(self.rng_name)
        if self.params.loss_prob > 0 and rng.random() < self.params.loss_prob:
            self.stats.dropped_loss += 1
            self._note_drop("loss")
            return

        extra_jitter = 0.0
        if self.params.jitter_s > 0:
            extra_jitter = rng.uniform(0.0, self.params.jitter_s)
        detour = 0.0
        if self.params.reorder_prob > 0 and rng.random() < self.params.reorder_prob:
            detour = rng.uniform(0.0, self.params.reorder_delay_s)
            self.stats.detoured += 1
        arrival = (
            self._tx_free_at
            + self.params.delay_s
            + extra_jitter
            + detour
            + fault_extra_s
        )
        self._schedule_delivery(arrival, datagram, deliver, fault, fault_duplicate)

    def _schedule_delivery(
        self,
        arrival: float,
        datagram: Datagram,
        deliver: DeliverFn,
        fault: Optional[LinkFault],
        duplicate: bool,
    ) -> None:
        self.sim.call_at(arrival, self._deliver, datagram, deliver)
        if duplicate and fault is not None:
            self.stats.fault_duplicated += 1
            self.sim.call_at(
                arrival + fault.duplicate_delay_s, self._deliver, datagram, deliver
            )

    def _note_drop(self, reason: str) -> None:
        tel = self.sim.telemetry
        if tel.active:
            tel.emit("net.drop", link=self.rng_name, reason=reason)
            tel.count(f"net.drop.{reason}")

    def _deliver(self, datagram: Datagram, deliver: DeliverFn) -> None:
        if not self.up:
            return
        self.stats.delivered_packets += 1
        tel = self.sim.telemetry
        if tel.active:
            tel.emit(
                "net.deliver", link=self.rng_name, bytes=datagram.wire_bytes()
            )
        deliver(datagram)


class Link:
    """A bidirectional link between two nodes.

    Both directions share :class:`LinkParams` by default but keep
    independent transmitter state, random streams and statistics.
    """

    def __init__(
        self,
        sim: Simulator,
        node_a: int,
        node_b: int,
        params: LinkParams,
        reverse_params: Optional[LinkParams] = None,
    ) -> None:
        if node_a == node_b:
            raise NetworkError(f"link endpoints must differ, got {node_a}")
        self.node_a = node_a
        self.node_b = node_b
        self.forward = _Direction(sim, params, f"link.{node_a}->{node_b}")
        self.backward = _Direction(
            sim, reverse_params or params, f"link.{node_b}->{node_a}"
        )

    def direction(self, from_node: int) -> _Direction:
        if from_node == self.node_a:
            return self.forward
        if from_node == self.node_b:
            return self.backward
        raise NetworkError(
            f"node {from_node} is not an endpoint of link "
            f"({self.node_a},{self.node_b})"
        )

    @property
    def up(self) -> bool:
        return self.forward.up and self.backward.up

    def set_up(self, up: bool) -> None:
        """Bring both directions up or down (partition injection)."""
        self.forward.up = up
        self.backward.up = up

    def set_fault(self, fault: Optional[LinkFault]) -> None:
        """Install (or clear, with None) an impairment on both directions."""
        self.forward.set_fault(fault)
        self.backward.set_fault(fault)

    @property
    def faulted(self) -> bool:
        return self.forward.fault is not None or self.backward.fault is not None

    def stats(self) -> LinkStats:
        """Aggregated two-direction statistics."""
        total = LinkStats()
        for direction in (self.forward, self.backward):
            total.sent_packets += direction.stats.sent_packets
            total.sent_bytes += direction.stats.sent_bytes
            total.delivered_packets += direction.stats.delivered_packets
            total.dropped_loss += direction.stats.dropped_loss
            total.dropped_queue += direction.stats.dropped_queue
            total.detoured += direction.stats.detoured
            total.guaranteed_packets += direction.stats.guaranteed_packets
            total.fault_dropped += direction.stats.fault_dropped
            total.fault_duplicated += direction.stats.fault_duplicated
            total.fault_delayed += direction.stats.fault_delayed
        return total
