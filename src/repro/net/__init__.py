"""Simulated network substrate.

Provides nodes, point-to-point links with delay/jitter/loss/bandwidth
models, shortest-path routing over an arbitrary topology, network
partitions, and an unreliable datagram (UDP-like) socket API.  The VoD
video plane and the group-communication control plane both run on these
sockets, so loss, reordering and duplication arise from the simulated
transport exactly as they would on a real IP network.
"""

from repro.net.address import Endpoint, NodeId
from repro.net.link import Link, LinkFault, LinkStats, LinkParams
from repro.net.network import Network
from repro.net.node import Node
from repro.net.packet import Datagram
from repro.net.topologies import build_lan, build_wan
from repro.net.udp import UdpSocket

__all__ = [
    "Datagram",
    "Endpoint",
    "Link",
    "LinkFault",
    "LinkParams",
    "LinkStats",
    "Network",
    "Node",
    "NodeId",
    "UdpSocket",
    "build_lan",
    "build_wan",
]
