"""Canned topologies matching the paper's two test environments.

* :func:`build_lan` — hosts on a 100 Mbps switched Ethernet: one switch,
  star wiring, sub-millisecond latency, no loss, no jitter.  This is the
  Section 6.1 environment.
* :func:`build_wan` — two campuses seven router hops apart on the
  Internet (Hebrew University <-> Tel Aviv University in the paper), with
  per-hop jitter and a small loss probability and no QoS reservation.
  This is the Section 6.2 environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import NetworkError
from repro.net.link import LinkParams
from repro.net.network import Network
from repro.sim.core import Simulator

#: Switched-Ethernet port: 100 Mbps, 100 us one-way, lossless, no jitter.
LAN_LINK = LinkParams(
    delay_s=0.0001, jitter_s=0.0, loss_prob=0.0, bandwidth_bps=100e6
)

#: Metro aggregation trunk: head-end switch to an edge concentrator.
#: 155 Mbps (OC-3 of the era), ~1 ms, clean — the operator owns it.
METRO_LINK = LinkParams(
    delay_s=0.001, jitter_s=0.0, loss_prob=0.0, bandwidth_bps=155e6
)

#: Edge access port: concentrator to a subscriber set-top box.  25 Mbps
#: (ADSL2+/early cable of the era), a few ms, lossless by default —
#: lossy last-mile client mixes inject loss as a fault-plan impairment
#: so the link's own streams stay comparable across cells.
EDGE_LINK = LinkParams(
    delay_s=0.005, jitter_s=0.0, loss_prob=0.0, bandwidth_bps=25e6
)

#: One Internet backbone hop: 34 Mbps (an E3/ATM trunk of the era),
#: a few ms propagation, per-hop jitter, a small loss probability so the
#: end-to-end path loses a fraction of a percent of packets, and rare
#: route-flap detours that reorder packets.
WAN_HOP_LINK = LinkParams(
    delay_s=0.004,
    jitter_s=0.003,
    loss_prob=0.0015,
    bandwidth_bps=34e6,
    reorder_prob=0.002,
    reorder_delay_s=0.12,
)


@dataclass
class Topology:
    """A built network plus the roles of its nodes."""

    network: Network
    hosts: List[int] = field(default_factory=list)
    infrastructure: List[int] = field(default_factory=list)

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    def host(self, index: int) -> int:
        """Node id of the index-th host."""
        return self.hosts[index]


def build_lan(
    sim: Simulator, n_hosts: int, link: LinkParams = LAN_LINK
) -> Topology:
    """A switched Ethernet: ``n_hosts`` hosts in a star around one switch."""
    if n_hosts < 1:
        raise NetworkError(f"a LAN needs at least one host, got {n_hosts}")
    network = Network(sim)
    switch = network.add_node("switch")
    topology = Topology(network=network, infrastructure=[switch.node_id])
    for index in range(n_hosts):
        host = network.add_node(f"host{index}")
        network.add_link(host.node_id, switch.node_id, link)
        topology.hosts.append(host.node_id)
    return topology


def build_wan(
    sim: Simulator,
    n_hosts_site_a: int,
    n_hosts_site_b: int,
    n_router_hops: int = 7,
    lan_link: LinkParams = LAN_LINK,
    wan_link: LinkParams = WAN_HOP_LINK,
) -> Topology:
    """Two LAN sites joined by a chain of ``n_router_hops`` WAN hops.

    Site A's hosts come first in ``hosts``, then site B's.  The hop count
    is the number of WAN links between the two site switches, mirroring
    the paper's "seven hops apart on the Internet".
    """
    if n_hosts_site_a < 1 or n_hosts_site_b < 1:
        raise NetworkError("each WAN site needs at least one host")
    if n_router_hops < 1:
        raise NetworkError(f"need at least one WAN hop, got {n_router_hops}")

    network = Network(sim)
    switch_a = network.add_node("switchA")
    switch_b = network.add_node("switchB")
    topology = Topology(
        network=network, infrastructure=[switch_a.node_id, switch_b.node_id]
    )

    previous = switch_a.node_id
    for index in range(n_router_hops - 1):
        router = network.add_node(f"router{index}")
        topology.infrastructure.append(router.node_id)
        network.add_link(previous, router.node_id, wan_link)
        previous = router.node_id
    network.add_link(previous, switch_b.node_id, wan_link)

    for index in range(n_hosts_site_a):
        host = network.add_node(f"siteA-host{index}")
        network.add_link(host.node_id, switch_a.node_id, lan_link)
        topology.hosts.append(host.node_id)
    for index in range(n_hosts_site_b):
        host = network.add_node(f"siteB-host{index}")
        network.add_link(host.node_id, switch_b.node_id, lan_link)
        topology.hosts.append(host.node_id)
    return topology


def build_hierarchy(
    sim: Simulator,
    n_core_hosts: int,
    n_edge_hosts: int,
    n_concentrators: int = 2,
    core_link: LinkParams = LAN_LINK,
    metro_link: LinkParams = METRO_LINK,
    edge_link: LinkParams = EDGE_LINK,
) -> Topology:
    """An edge-concentrator hierarchy: the cable/ISP deployment shape.

    Servers live on ``n_core_hosts`` hosts behind a head-end core
    switch; ``n_concentrators`` concentrator switches hang off the core
    over metro trunks; ``n_edge_hosts`` subscriber hosts attach to the
    concentrators round-robin over access links.  ``hosts`` lists the
    core hosts first, then the edge hosts — the same "server slots
    first, client hosts last" convention as the other builders.
    """
    if n_core_hosts < 1:
        raise NetworkError(
            f"a hierarchy needs at least one core host, got {n_core_hosts}"
        )
    if n_edge_hosts < 1:
        raise NetworkError(
            f"a hierarchy needs at least one edge host, got {n_edge_hosts}"
        )
    if n_concentrators < 1:
        raise NetworkError(
            f"need at least one concentrator, got {n_concentrators}"
        )
    network = Network(sim)
    core = network.add_node("core-switch")
    topology = Topology(network=network, infrastructure=[core.node_id])
    concentrators: List[int] = []
    for index in range(n_concentrators):
        concentrator = network.add_node(f"concentrator{index}")
        topology.infrastructure.append(concentrator.node_id)
        network.add_link(core.node_id, concentrator.node_id, metro_link)
        concentrators.append(concentrator.node_id)
    for index in range(n_core_hosts):
        host = network.add_node(f"core-host{index}")
        network.add_link(host.node_id, core.node_id, core_link)
        topology.hosts.append(host.node_id)
    for index in range(n_edge_hosts):
        host = network.add_node(f"edge-host{index}")
        concentrator = concentrators[index % n_concentrators]
        network.add_link(host.node_id, concentrator, edge_link)
        topology.hosts.append(host.node_id)
    return topology
