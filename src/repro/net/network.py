"""Network topology, routing and partition injection.

The network is an undirected graph of :class:`~repro.net.node.Node`
objects connected by :class:`~repro.net.link.Link` objects.  Datagrams
are forwarded hop by hop along shortest paths (BFS on live links), so a
multi-hop WAN path accumulates per-hop delay, jitter, queueing and loss
naturally.  Partitions are injected by taking links down; routes are
recomputed lazily.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.link import Link, LinkFault, LinkParams
from repro.net.node import Node
from repro.net.packet import Datagram
from repro.sim.core import Simulator


class Network:
    """The simulated internetwork."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: List[Node] = []
        self._links: Dict[Tuple[int, int], Link] = {}
        self._adjacency: Dict[int, List[int]] = {}
        self._routes: Optional[Dict[int, Dict[int, int]]] = None
        # Bumped on every change that can affect in-flight traffic:
        # topology, link up/down, injected faults, node crash/restart.
        # Precomputed burst transfers (net/burst.py) revalidate their
        # path whenever this moves.
        self.state_version = 0
        # Optional QoS manager (repro.net.qos.QosManager.install).
        self.qos = None

    def note_change(self) -> None:
        """Invalidate cached routes and precomputed fast-path state."""
        self._routes = None
        self.state_version += 1

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_node(self, name: Optional[str] = None) -> Node:
        node_id = len(self.nodes)
        node = Node(self, node_id, name or f"node{node_id}")
        self.nodes.append(node)
        self._adjacency[node_id] = []
        self.note_change()
        return node

    def add_link(
        self,
        node_a: int,
        node_b: int,
        params: Optional[LinkParams] = None,
        reverse_params: Optional[LinkParams] = None,
    ) -> Link:
        self._check_node(node_a)
        self._check_node(node_b)
        key = self._link_key(node_a, node_b)
        if key in self._links:
            raise NetworkError(f"link {key} already exists")
        link = Link(self.sim, node_a, node_b, params or LinkParams(), reverse_params)
        self._links[key] = link
        self._adjacency[node_a].append(node_b)
        self._adjacency[node_b].append(node_a)
        self.note_change()
        return link

    def node(self, node_id: int) -> Node:
        self._check_node(node_id)
        return self.nodes[node_id]

    def link(self, node_a: int, node_b: int) -> Link:
        key = self._link_key(node_a, node_b)
        link = self._links.get(key)
        if link is None:
            raise NetworkError(f"no link between {node_a} and {node_b}")
        return link

    def links(self) -> Iterable[Link]:
        return self._links.values()

    # ------------------------------------------------------------------
    # Partition injection
    # ------------------------------------------------------------------
    def set_link_state(self, node_a: int, node_b: int, up: bool) -> None:
        self.link(node_a, node_b).set_up(up)
        self.note_change()

    def partition(self, side_a: Iterable[int], side_b: Iterable[int]) -> None:
        """Cut every link that crosses between the two node sets."""
        set_a, set_b = set(side_a), set(side_b)
        for (u, v), link in self._links.items():
            if (u in set_a and v in set_b) or (u in set_b and v in set_a):
                link.set_up(False)
        self.note_change()

    def heal(self) -> None:
        """Bring every link back up."""
        for link in self._links.values():
            link.set_up(True)
        self.note_change()

    def partition_node(self, node_id: int) -> None:
        """Isolate one node: take down every link it terminates."""
        self._check_node(node_id)
        for (u, v), link in self._links.items():
            if node_id in (u, v):
                link.set_up(False)
        self.note_change()

    def heal_node(self, node_id: int) -> None:
        """Undo :meth:`partition_node`: restore the node's links."""
        self._check_node(node_id)
        for (u, v), link in self._links.items():
            if node_id in (u, v):
                link.set_up(True)
        self.note_change()

    # ------------------------------------------------------------------
    # Fault injection (see repro.faulting)
    # ------------------------------------------------------------------
    def set_link_fault(
        self, node_a: int, node_b: int, fault: Optional[LinkFault]
    ) -> None:
        """Install (or clear, with None) an impairment on one link."""
        self.link(node_a, node_b).set_fault(fault)
        self.note_change()

    def set_node_fault(self, node_id: int, fault: Optional[LinkFault]) -> None:
        """Impair every link terminating at ``node_id`` (a flaky NIC or
        an overloaded last-hop router)."""
        self._check_node(node_id)
        for (u, v), link in self._links.items():
            if node_id in (u, v):
                link.set_fault(fault)
        self.note_change()

    def clear_link_faults(self) -> None:
        for link in self._links.values():
            link.set_fault(None)
        self.note_change()

    def faulted_links(self) -> List[Tuple[int, int]]:
        return sorted(key for key, link in self._links.items() if link.faulted)

    def reachable(self, src: int, dst: int) -> bool:
        return self._next_hop(src, dst) is not None or src == dst

    # ------------------------------------------------------------------
    # Datagram forwarding
    # ------------------------------------------------------------------
    def send(self, datagram: Datagram) -> None:
        """Inject a datagram at its source node and route it."""
        src_node = self.node(datagram.src.node)
        if not src_node.alive:
            return
        self._forward(datagram, at_node=datagram.src.node)

    def _forward(self, datagram: Datagram, at_node: int) -> None:
        if at_node == datagram.dst.node:
            self.node(at_node).deliver(datagram)
            return
        if datagram.hops_remaining <= 0:
            return
        next_hop = self._next_hop(at_node, datagram.dst.node)
        if next_hop is None:
            return  # unreachable: datagrams vanish, like real UDP
        datagram.hops_remaining -= 1
        link = self.link(at_node, next_hop)
        guaranteed = (
            self.qos is not None
            and datagram.flow_id is not None
            and self.qos.admit_packet(
                at_node, next_hop, datagram.flow_id, datagram.wire_bytes()
            )
        )
        link.direction(at_node).transmit(
            datagram,
            lambda dgram, hop=next_hop: self._on_hop(dgram, hop),
            guaranteed=guaranteed,
        )

    def _on_hop(self, datagram: Datagram, node_id: int) -> None:
        node = self.node(node_id)
        if not node.alive and node_id != datagram.dst.node:
            return  # routers that crashed blackhole traffic
        self._forward(datagram, at_node=node_id)

    # ------------------------------------------------------------------
    # Fast-path support (see repro.net.burst)
    # ------------------------------------------------------------------
    def resolve_path(self, src: int, dst: int):
        """The hop sequence a datagram would take right now, or None.

        Returns a list of ``(direction, to_node_id)`` pairs following the
        same BFS next-hop tables :meth:`send` uses, so a precomputed
        burst crosses exactly the links a per-frame send would.
        """
        if src == dst:
            return []
        hops = []
        at = src
        while at != dst:
            next_hop = self._next_hop(at, dst)
            if next_hop is None or len(hops) >= 64:
                return None
            hops.append((self.link(at, next_hop).direction(at), next_hop))
            at = next_hop
        return hops

    def path_clear(self, hops, dst: int) -> bool:
        """True when every hop of ``hops`` is deterministic end to end:
        links up and clean (no loss/jitter/reorder/fault draws), transit
        nodes alive, and the destination both alive and free of
        process-scheduling noise.  Under these conditions a batched
        transfer is bit-identical to per-frame sends."""
        for direction, to_node in hops:
            if not direction.up or not direction.clean:
                return False
            node = self.nodes[to_node]
            if not node.alive:
                return False
            if to_node == dst and node.scheduling_noise_s > 0:
                return False
        return True

    # ------------------------------------------------------------------
    # Routing (BFS shortest path over live links)
    # ------------------------------------------------------------------
    def _next_hop(self, src: int, dst: int) -> Optional[int]:
        routes = self._routing_tables()
        return routes.get(src, {}).get(dst)

    def _routing_tables(self) -> Dict[int, Dict[int, int]]:
        if self._routes is None:
            self._routes = {
                node.node_id: self._bfs_from(node.node_id) for node in self.nodes
            }
        return self._routes

    def _bfs_from(self, src: int) -> Dict[int, int]:
        """First hop from ``src`` toward every reachable destination."""
        first_hop: Dict[int, int] = {}
        visited = {src}
        frontier = deque()
        for neighbor in self._adjacency[src]:
            if self._link_up(src, neighbor):
                first_hop[neighbor] = neighbor
                visited.add(neighbor)
                frontier.append(neighbor)
        while frontier:
            current = frontier.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor in visited or not self._link_up(current, neighbor):
                    continue
                visited.add(neighbor)
                first_hop[neighbor] = first_hop[current]
                frontier.append(neighbor)
        return first_hop

    def _link_up(self, node_a: int, node_b: int) -> bool:
        return self._links[self._link_key(node_a, node_b)].up

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _link_key(node_a: int, node_b: int) -> Tuple[int, int]:
        return (node_a, node_b) if node_a < node_b else (node_b, node_a)

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < len(self.nodes):
            raise NetworkError(f"unknown node id {node_id}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Network nodes={len(self.nodes)} links={len(self._links)}>"
