"""Addressing primitives: node identifiers and (node, port) endpoints."""

from __future__ import annotations

from dataclasses import dataclass

NodeId = int
"""Nodes are identified by small integers assigned by the Network."""


@dataclass(frozen=True, order=True)
class Endpoint:
    """A (node, port) pair — the datagram-layer address of a socket."""

    node: NodeId
    port: int

    def __str__(self) -> str:
        return f"{self.node}:{self.port}"


# Well-known ports used by the VoD service.  These mirror the role of
# registered port numbers on a real deployment; any free port works, the
# constants just make traces readable.
GCS_PORT = 7000
VIDEO_PORT = 8000
CONTROL_PORT = 8001
