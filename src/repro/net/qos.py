"""QoS reservations — the paper's Section 8 future work, implemented.

The paper closes: "We intend to port and test the VoD service over ATM
networks: The video material will be transmitted via native ATM
connections", and Section 4.1 sizes the reservation: a **CBR channel**
for the steady stream plus a **VBR channel** "varying to at most 40% of
the constant bit rate" for emergency periods.

The model here is admission-controlled per-link bandwidth reservation
with token-bucket policing:

* a :class:`FlowReservation` claims ``cbr_bps + vbr_bps`` along the
  links of one path; admission fails if any link's reservable share
  (``reservable_fraction`` of its capacity) would be exceeded;
* datagrams tagged with a reserved flow id that *conform* to the
  token bucket traverse links without loss, queue drops or detours
  (the reserved slots are theirs);
* non-conforming packets of a reserved flow, and all unreserved
  traffic, get today's best-effort treatment.

Propagation delay and serialization are still charged — reservations
buy loss-freedom and queue-immunity, not magic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.network import Network
from repro.sim.core import Simulator

_flow_ids = itertools.count(1)


@dataclass
class _TokenBucket:
    """Token bucket policing one flow on one link direction."""

    rate_bps: float
    burst_bits: float
    tokens: float
    last_refill: float

    def conforms(self, now: float, bits: float) -> bool:
        elapsed = now - self.last_refill
        self.tokens = min(self.burst_bits, self.tokens + elapsed * self.rate_bps)
        self.last_refill = now
        if self.tokens >= bits:
            self.tokens -= bits
            return True
        return False


@dataclass
class FlowReservation:
    """An admitted CBR+VBR reservation along one path."""

    flow_id: int
    src: int
    dst: int
    cbr_bps: float
    vbr_bps: float
    links: List[Tuple[int, int]] = field(default_factory=list)
    released: bool = False

    @property
    def total_bps(self) -> float:
        return self.cbr_bps + self.vbr_bps


class QosManager:
    """Admission control and policing state for one network.

    Attach with :meth:`install`; the link layer consults
    :meth:`admit_packet` for every datagram carrying a ``flow_id``.
    """

    #: Fraction of each link's capacity available to reservations.
    DEFAULT_RESERVABLE_FRACTION = 0.8

    def __init__(
        self,
        network: Network,
        reservable_fraction: float = DEFAULT_RESERVABLE_FRACTION,
    ) -> None:
        if not 0 < reservable_fraction <= 1.0:
            raise NetworkError(
                f"reservable fraction must be in (0,1], got {reservable_fraction!r}"
            )
        self.network = network
        self.sim: Simulator = network.sim
        self.reservable_fraction = reservable_fraction
        self.reservations: Dict[int, FlowReservation] = {}
        # Reserved bits/s per directed link (u, v).
        self._committed: Dict[Tuple[int, int], float] = {}
        # Token buckets per (directed link, flow).
        self._buckets: Dict[Tuple[Tuple[int, int], int], _TokenBucket] = {}
        self.rejected_admissions = 0
        self.policed_packets = 0
        self.guaranteed_packets = 0

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Register this manager with the network's links."""
        self.network.qos = self

    # ------------------------------------------------------------------
    # Reservation lifecycle
    # ------------------------------------------------------------------
    def reserve(
        self, src: int, dst: int, cbr_bps: float, vbr_bps: float = 0.0
    ) -> Optional[FlowReservation]:
        """Admit a flow along the current src->dst path, or None."""
        if cbr_bps <= 0 or vbr_bps < 0:
            raise NetworkError("reservation rates must be positive")
        path = self._path(src, dst)
        if path is None:
            return None
        demand = cbr_bps + vbr_bps
        for hop in path:
            capacity = self._link_capacity(hop)
            if self._committed.get(hop, 0.0) + demand > (
                capacity * self.reservable_fraction
            ):
                self.rejected_admissions += 1
                return None
        reservation = FlowReservation(
            flow_id=next(_flow_ids),
            src=src,
            dst=dst,
            cbr_bps=cbr_bps,
            vbr_bps=vbr_bps,
            links=path,
        )
        for hop in path:
            self._committed[hop] = self._committed.get(hop, 0.0) + demand
            self._buckets[(hop, reservation.flow_id)] = _TokenBucket(
                rate_bps=demand,
                burst_bits=max(demand * 0.25, 64_000),
                tokens=max(demand * 0.25, 64_000),
                last_refill=self.sim.now,
            )
        self.reservations[reservation.flow_id] = reservation
        return reservation

    def release(self, reservation: FlowReservation) -> None:
        if reservation.released:
            return
        reservation.released = True
        self.reservations.pop(reservation.flow_id, None)
        for hop in reservation.links:
            self._committed[hop] = max(
                0.0, self._committed.get(hop, 0.0) - reservation.total_bps
            )
            self._buckets.pop((hop, reservation.flow_id), None)

    def committed_on(self, node_a: int, node_b: int) -> float:
        return self._committed.get((node_a, node_b), 0.0)

    # ------------------------------------------------------------------
    # Data path (called by the link layer)
    # ------------------------------------------------------------------
    def admit_packet(
        self, from_node: int, to_node: int, flow_id: int, wire_bytes: int
    ) -> bool:
        """True if this packet rides its reservation on this hop."""
        bucket = self._buckets.get(((from_node, to_node), flow_id))
        if bucket is None:
            return False
        if bucket.conforms(self.sim.now, wire_bytes * 8.0):
            self.guaranteed_packets += 1
            return True
        self.policed_packets += 1
        return False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _path(self, src: int, dst: int) -> Optional[List[Tuple[int, int]]]:
        """Directed hops of the current routing path src -> dst."""
        hops: List[Tuple[int, int]] = []
        at = src
        for _ in range(64):
            if at == dst:
                return hops
            nxt = self.network._next_hop(at, dst)
            if nxt is None:
                return None
            hops.append((at, nxt))
            at = nxt
        return None

    def _link_capacity(self, hop: Tuple[int, int]) -> float:
        link = self.network.link(*hop)
        return link.direction(hop[0]).params.bandwidth_bps
