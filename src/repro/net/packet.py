"""Datagram model.

Payloads are ordinary Python objects (message dataclasses); the wire size
is carried explicitly so bandwidth and serialization-delay modelling do
not depend on actually encoding anything.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.net.address import Endpoint

_packet_ids = itertools.count(1)

#: ``@dataclass(slots=True)`` needs Python 3.10; on older interpreters
#: the hot wire types simply keep their __dict__ (correctness is
#: unaffected, only allocation cost).
DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}

#: Fixed per-datagram header overhead we charge on the wire, roughly an
#: IP + UDP header (20 + 8 bytes) — matches the paper's UDP/IP transport.
HEADER_BYTES = 28


@dataclass(**DATACLASS_SLOTS)
class Datagram:
    """One unreliable datagram in flight.

    ``size_bytes`` is the payload size; :meth:`wire_bytes` adds header
    overhead.  ``packet_id`` is unique per send, so duplicates created by
    the link layer can be recognised in traces (receivers must still cope
    with them — the ID is not exposed to protocols).
    """

    src: Endpoint
    dst: Endpoint
    payload: Any
    size_bytes: int
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    hops_remaining: int = 64
    # QoS: id of an admitted reservation (see repro.net.qos); packets of
    # a reserved flow that conform to their token bucket ride loss- and
    # queue-drop-free.
    flow_id: Optional[int] = None

    def wire_bytes(self) -> int:
        return self.size_bytes + HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Datagram #{self.packet_id} {self.src}->{self.dst} "
            f"{self.size_bytes}B {type(self.payload).__name__}>"
        )
