"""Unreliable datagram sockets.

The socket API mirrors classic BSD UDP semantics: ``sendto`` never blocks
and gives no delivery guarantee; received datagrams invoke a callback.
Both the video plane and the GCS control plane of the VoD service use
these sockets.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SocketClosedError
from repro.net.address import Endpoint
from repro.net.node import Node
from repro.net.packet import Datagram

ReceiveFn = Callable[[Datagram], None]


class UdpSocket:
    """An unreliable datagram socket bound to one node and port."""

    def __init__(
        self,
        node: Node,
        port: Optional[int] = None,
        on_receive: Optional[ReceiveFn] = None,
    ) -> None:
        self.node = node
        self.port = node.bind(self, port)
        self.on_receive = on_receive
        self.closed = False
        self.sent_packets = 0
        self.sent_bytes = 0
        self.received_packets = 0
        self.received_bytes = 0

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(self.node.node_id, self.port)

    def sendto(
        self,
        dst: Endpoint,
        payload: Any,
        size_bytes: int,
        flow_id: int = None,
    ) -> Datagram:
        """Fire-and-forget send.  Returns the in-flight datagram.

        ``flow_id`` tags the datagram as belonging to a QoS reservation
        (see :mod:`repro.net.qos`)."""
        if self.closed:
            raise SocketClosedError(f"socket {self.endpoint} is closed")
        if size_bytes < 0:
            raise ValueError(f"negative payload size {size_bytes!r}")
        datagram = Datagram(
            src=self.endpoint, dst=dst, payload=payload, size_bytes=size_bytes,
            flow_id=flow_id,
        )
        self.sent_packets += 1
        self.sent_bytes += size_bytes
        self.node.network.send(datagram)
        return datagram

    def sendto_burst(
        self,
        dst: Endpoint,
        entries,
        on_deliver=None,
        on_abort=None,
        carry_tx_free=None,
    ):
        """Start a precomputed batched transfer toward ``dst``.

        ``entries`` is a sequence of ``(send_time, payload, size_bytes)``
        with nondecreasing send times.  Returns a
        :class:`repro.net.burst.BurstTransfer`, or ``None`` when the
        current path is not eligible for the fast path (the caller must
        then fall back to per-frame :meth:`sendto`).  Socket counters are
        settled as each frame delivers, so end-of-run totals match the
        per-frame path exactly."""
        if self.closed:
            raise SocketClosedError(f"socket {self.endpoint} is closed")
        from repro.net.burst import start_burst

        return start_burst(
            self.node.network, self, dst, entries,
            on_deliver=on_deliver, on_abort=on_abort,
            carry_tx_free=carry_tx_free,
        )

    def handle_datagram(self, datagram: Datagram) -> None:
        """Called by the node when a datagram reaches this socket."""
        if self.closed:
            return
        self.received_packets += 1
        self.received_bytes += datagram.size_bytes
        if self.on_receive is not None:
            self.on_receive(datagram)

    def close(self) -> None:
        """Close the socket; further sends raise, arrivals are dropped."""
        if self.closed:
            return
        self.closed = True
        self.node.unbind(self.port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<UdpSocket {self.endpoint} {state}>"
