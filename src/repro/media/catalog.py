"""The movie catalog and its replication map.

The paper assumes "a separate mechanism for replicating the video
material"; the catalog is that mechanism's outcome: which movies exist
and which servers hold a replica of each.  Movies can be added on the
fly ("new movies can be added by storing them on machines where servers
are running").

Replicas come in two flavours.  A **full** replica is the paper's
notion — the server can stream the whole title, and only full replicas
count toward "replicated k times tolerates k-1 failures"
(:meth:`MovieCatalog.replication_degree`).  A **prefix** replica stores
only the first ``prefix_s`` seconds (edge/proxy caching, see
``repro.placement``): the server can admit a viewer instantly but must
hand the session off to a full replica before the playhead leaves the
prefix.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.errors import UnknownMovieError
from repro.media.movie import Movie


class MovieCatalog:
    """Movies plus the replica placement map (server name -> movies)."""

    def __init__(self, movies: Optional[Iterable[Movie]] = None) -> None:
        self._movies: Dict[str, Movie] = {}
        self._replicas: Dict[str, Set[str]] = {}
        # (title, server) -> stored prefix seconds; absent = full copy.
        self._prefixes: Dict[str, Dict[str, float]] = {}
        for movie in movies or ():
            self.add_movie(movie)

    # ------------------------------------------------------------------
    # Movies
    # ------------------------------------------------------------------
    def add_movie(self, movie: Movie) -> None:
        self._movies[movie.title] = movie
        self._replicas.setdefault(movie.title, set())

    def movie(self, title: str) -> Movie:
        movie = self._movies.get(title)
        if movie is None:
            raise UnknownMovieError(f"no movie titled {title!r} in the catalog")
        return movie

    def titles(self) -> List[str]:
        return sorted(self._movies)

    def __contains__(self, title: str) -> bool:
        return title in self._movies

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def place_replica(
        self, title: str, server_name: str, prefix_s: Optional[float] = None
    ) -> None:
        """Record that ``server_name`` stores a copy of ``title``.

        ``prefix_s`` limits the copy to the first ``prefix_s`` seconds;
        placing with ``prefix_s=None`` (the default) stores — or
        upgrades to — a full copy.
        """
        if title not in self._movies:
            raise UnknownMovieError(f"cannot replicate unknown movie {title!r}")
        self._replicas[title].add(server_name)
        if prefix_s is None:
            self._prefixes.get(title, {}).pop(server_name, None)
        else:
            self._prefixes.setdefault(title, {})[server_name] = prefix_s

    def remove_replica(self, title: str, server_name: str) -> None:
        self._replicas.get(title, set()).discard(server_name)
        self._prefixes.get(title, {}).pop(server_name, None)

    def replicas(self, title: str) -> Set[str]:
        """All holders of ``title``, full and prefix alike."""
        if title not in self._movies:
            raise UnknownMovieError(f"no movie titled {title!r} in the catalog")
        return set(self._replicas[title])

    def full_replicas(self, title: str) -> Set[str]:
        """Holders that can stream ``title`` end to end."""
        prefixed = self._prefixes.get(title, {})
        return {
            server for server in self.replicas(title) if server not in prefixed
        }

    def prefix_of(self, title: str, server_name: str) -> Optional[float]:
        """Stored prefix seconds at ``server_name``; None = full copy."""
        return self._prefixes.get(title, {}).get(server_name)

    def prefixed_replicas(self, title: str) -> Dict[str, float]:
        """server name -> stored prefix seconds, for prefix holders only."""
        return dict(self._prefixes.get(title, {}))

    def prefix_frames(self, title: str, server_name: str) -> Optional[int]:
        """The prefix boundary as a frame index (None = full copy)."""
        prefix_s = self.prefix_of(title, server_name)
        if prefix_s is None:
            return None
        movie = self.movie(title)
        return min(len(movie.frames), int(prefix_s * movie.fps))

    def movies_of(self, server_name: str) -> List[str]:
        """Titles replicated at ``server_name`` (sorted; any flavour)."""
        return sorted(
            title
            for title, holders in self._replicas.items()
            if server_name in holders
        )

    def replication_degree(self, title: str) -> int:
        """k, as in "replicated k times tolerates k-1 failures".

        Counts only full replicas: a prefix copy cannot carry a session
        to the end of the movie, so it contributes nothing to the
        paper's fault-tolerance contract.
        """
        return len(self.full_replicas(title))

    def place_round_robin(self, server_names: List[str], k: int) -> None:
        """Spread every movie over ``k`` of the given servers.

        Title ``i`` (in sorted order) goes to servers ``i..i+k-1``
        (mod n), so storage is balanced and every movie tolerates k-1
        failures — the paper's "each movie is replicated at a subset of
        the servers" made concrete.
        """
        from repro.errors import MediaError

        if not 1 <= k <= len(server_names):
            raise MediaError(
                f"need 1 <= k <= {len(server_names)} servers, got k={k}"
            )
        for position, title in enumerate(self.titles()):
            for offset in range(k):
                server = server_names[(position + offset) % len(server_names)]
                self.place_replica(title, server)
