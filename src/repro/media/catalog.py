"""The movie catalog and its replication map.

The paper assumes "a separate mechanism for replicating the video
material"; the catalog is that mechanism's outcome: which movies exist
and which servers hold a replica of each.  Movies can be added on the
fly ("new movies can be added by storing them on machines where servers
are running").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.errors import UnknownMovieError
from repro.media.movie import Movie


class MovieCatalog:
    """Movies plus the replica placement map (server name -> movies)."""

    def __init__(self, movies: Optional[Iterable[Movie]] = None) -> None:
        self._movies: Dict[str, Movie] = {}
        self._replicas: Dict[str, Set[str]] = {}
        for movie in movies or ():
            self.add_movie(movie)

    # ------------------------------------------------------------------
    # Movies
    # ------------------------------------------------------------------
    def add_movie(self, movie: Movie) -> None:
        self._movies[movie.title] = movie
        self._replicas.setdefault(movie.title, set())

    def movie(self, title: str) -> Movie:
        movie = self._movies.get(title)
        if movie is None:
            raise UnknownMovieError(f"no movie titled {title!r} in the catalog")
        return movie

    def titles(self) -> List[str]:
        return sorted(self._movies)

    def __contains__(self, title: str) -> bool:
        return title in self._movies

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def place_replica(self, title: str, server_name: str) -> None:
        """Record that ``server_name`` stores a copy of ``title``."""
        if title not in self._movies:
            raise UnknownMovieError(f"cannot replicate unknown movie {title!r}")
        self._replicas[title].add(server_name)

    def remove_replica(self, title: str, server_name: str) -> None:
        self._replicas.get(title, set()).discard(server_name)

    def replicas(self, title: str) -> Set[str]:
        if title not in self._movies:
            raise UnknownMovieError(f"no movie titled {title!r} in the catalog")
        return set(self._replicas[title])

    def movies_of(self, server_name: str) -> List[str]:
        """Titles replicated at ``server_name`` (sorted)."""
        return sorted(
            title
            for title, holders in self._replicas.items()
            if server_name in holders
        )

    def replication_degree(self, title: str) -> int:
        """k, as in "replicated k times tolerates k-1 failures"."""
        return len(self.replicas(title))

    def place_round_robin(self, server_names: List[str], k: int) -> None:
        """Spread every movie over ``k`` of the given servers.

        Title ``i`` (in sorted order) goes to servers ``i..i+k-1``
        (mod n), so storage is balanced and every movie tolerates k-1
        failures — the paper's "each movie is replicated at a subset of
        the servers" made concrete.
        """
        from repro.errors import MediaError

        if not 1 <= k <= len(server_names):
            raise MediaError(
                f"need 1 <= k <= {len(server_names)} servers, got k={k}"
            )
        for position, title in enumerate(self.titles()):
            for offset in range(k):
                server = server_names[(position + offset) % len(server_names)]
                self.place_replica(title, server)
