"""Synthetic movies calibrated to the paper's test stream."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import MediaError
from repro.media.frames import Frame, GopPattern

#: The paper's stream: "Approximately 1.4 Mbps, 30 frames per second
#: MPEG movie".
DEFAULT_BITRATE_BPS = 1.4e6
DEFAULT_FPS = 30


@dataclass
class Movie:
    """A stored movie: an immutable sequence of frames.

    Use :meth:`synthetic` to generate one; frame sizes follow the GOP
    size weights with mild pseudo-random variation, deterministic in the
    title, so every server replica of a movie is bit-identical.
    """

    title: str
    fps: int
    frames: List[Frame] = field(repr=False)

    @classmethod
    def synthetic(
        cls,
        title: str,
        duration_s: float,
        fps: int = DEFAULT_FPS,
        bitrate_bps: float = DEFAULT_BITRATE_BPS,
        gop: str = GopPattern.DEFAULT,
        size_variation: float = 0.15,
    ) -> "Movie":
        """Generate a synthetic movie.

        Mean frame size is ``bitrate / (8 * fps)``; individual sizes are
        scaled by the GOP type weights and perturbed by up to
        ``size_variation`` (relative), seeded from the title.
        """
        if duration_s <= 0:
            raise MediaError(f"duration must be positive, got {duration_s!r}")
        if fps < 1:
            raise MediaError(f"fps must be >= 1, got {fps!r}")
        if not 0 <= size_variation < 1:
            raise MediaError(
                f"size_variation must be in [0,1), got {size_variation!r}"
            )
        pattern = GopPattern(gop)
        mean_frame_bytes = bitrate_bps / (8.0 * fps)
        scale = mean_frame_bytes / pattern.mean_weight()
        rng = random.Random(f"movie:{title}")
        n_frames = int(round(duration_s * fps))
        frames = []
        for index in range(1, n_frames + 1):
            ftype = pattern.frame_type(index)
            base = scale * GopPattern.SIZE_WEIGHTS[ftype]
            jitter = 1.0 + rng.uniform(-size_variation, size_variation)
            frames.append(
                Frame(title, index, ftype, max(64, int(base * jitter)))
            )
        return cls(title=title, fps=fps, frames=frames)

    @classmethod
    def synthetic_vbr(
        cls,
        title: str,
        duration_s: float,
        fps: int = DEFAULT_FPS,
        base_bitrate_bps: float = DEFAULT_BITRATE_BPS,
        gop: str = GopPattern.DEFAULT,
        scene_len_s: Tuple[float, float] = (4.0, 12.0),
        scene_scale: Tuple[float, float] = (0.5, 1.8),
    ) -> "Movie":
        """Generate a variable-bitrate movie.

        Real MPEG encodes are strongly scene-dependent; this generator
        splits the movie into scenes of ``scene_len_s`` seconds whose
        bitrate is the base scaled by a factor drawn from
        ``scene_scale``.  Frame counts and GOP structure are unchanged —
        only sizes vary — so the stream stresses the *byte*-bounded
        hardware buffer while the frame-counted flow control adapts.
        """
        if duration_s <= 0:
            raise MediaError(f"duration must be positive, got {duration_s!r}")
        pattern = GopPattern(gop)
        mean_frame_bytes = base_bitrate_bps / (8.0 * fps)
        scale = mean_frame_bytes / pattern.mean_weight()
        rng = random.Random(f"movie-vbr:{title}")
        n_frames = int(round(duration_s * fps))

        frames = []
        index = 1
        while index <= n_frames:
            scene_frames = int(rng.uniform(*scene_len_s) * fps)
            scene_factor = rng.uniform(*scene_scale)
            for _ in range(scene_frames):
                if index > n_frames:
                    break
                ftype = pattern.frame_type(index)
                base = scale * GopPattern.SIZE_WEIGHTS[ftype] * scene_factor
                jitter = 1.0 + rng.uniform(-0.1, 0.1)
                frames.append(
                    Frame(title, index, ftype, max(64, int(base * jitter)))
                )
                index += 1
        return cls(title=title, fps=fps, frames=frames)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.frames)

    @property
    def duration_s(self) -> float:
        return len(self.frames) / self.fps

    def frame(self, index: int) -> Frame:
        """The 1-based ``index``-th frame."""
        if not 1 <= index <= len(self.frames):
            raise MediaError(
                f"{self.title!r} has frames 1..{len(self.frames)}, asked {index}"
            )
        return self.frames[index - 1]

    def mean_frame_bytes(self) -> float:
        return sum(frame.size_bytes for frame in self.frames) / len(self.frames)

    def bitrate_bps(self) -> float:
        return self.mean_frame_bytes() * 8.0 * self.fps

    def index_at(self, seconds: float) -> int:
        """Frame index playing at ``seconds`` into the movie (clamped)."""
        index = int(seconds * self.fps) + 1
        return max(1, min(index, len(self.frames)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Movie {self.title!r} {len(self.frames)} frames "
            f"@{self.fps}fps ~{self.bitrate_bps()/1e6:.2f}Mbps>"
        )
