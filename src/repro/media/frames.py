"""Frame types and group-of-pictures structure."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import MediaError


class FrameType(enum.Enum):
    """MPEG frame types.

    ``I`` frames are self-contained full images; ``P`` and ``B`` frames
    are incremental and cannot be decoded without their reference
    frames.  The client's overflow policy prefers discarding incremental
    frames, and quality adaptation always preserves I frames.
    """

    I = "I"  # noqa: E741 - the MPEG name
    P = "P"
    B = "B"

    @property
    def is_intra(self) -> bool:
        return self is FrameType.I


@dataclass(frozen=True)
class Frame:
    """One video frame as transmitted (a single frame per datagram)."""

    movie: str
    index: int  # 1-based position in the movie
    ftype: FrameType
    size_bytes: int

    def __post_init__(self) -> None:
        if self.index < 1:
            raise MediaError(f"frame index must be >= 1, got {self.index}")
        if self.size_bytes <= 0:
            raise MediaError(f"frame size must be positive, got {self.size_bytes}")

    @property
    def is_intra(self) -> bool:
        return self.ftype.is_intra

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Frame {self.movie}#{self.index} {self.ftype.value} {self.size_bytes}B>"


class GopPattern:
    """A repeating group-of-pictures pattern, e.g. ``IBBPBBPBBPBB``.

    Also owns the relative size weights of the frame types; classic
    MPEG-1 encodes have I frames roughly 2.5x the size of P frames and
    5x the size of B frames.
    """

    DEFAULT = "IBBPBBPBBPBB"
    SIZE_WEIGHTS = {FrameType.I: 5.0, FrameType.P: 2.0, FrameType.B: 1.0}

    def __init__(self, pattern: str = DEFAULT) -> None:
        if not pattern:
            raise MediaError("GOP pattern must be non-empty")
        if pattern[0] != "I":
            raise MediaError(f"GOP pattern must start with an I frame: {pattern!r}")
        try:
            self.types: Tuple[FrameType, ...] = tuple(
                FrameType(ch) for ch in pattern
            )
        except ValueError as exc:
            raise MediaError(f"invalid GOP pattern {pattern!r}") from exc
        self.pattern = pattern

    def __len__(self) -> int:
        return len(self.types)

    def frame_type(self, index: int) -> FrameType:
        """Type of the 1-based ``index``-th frame of the movie."""
        return self.types[(index - 1) % len(self.types)]

    def mean_weight(self) -> float:
        """Average size weight over one GOP (for bitrate calibration)."""
        total = sum(self.SIZE_WEIGHTS[ftype] for ftype in self.types)
        return total / len(self.types)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GopPattern({self.pattern!r})"
