"""Hardware MPEG decoder model.

The client machines in the paper decode with an Optibase hardware card
that has its own input buffer ("240 KB hardware buffers, approximately
1.2 seconds of video").  We model the card as a byte-capacity FIFO that
the player fills from its software buffer and that consumes (displays)
one frame per frame period.  The decoder itself never reorders — frames
must be streamed into it in display order, which is why late-arriving
frames whose successors were already streamed in must be dropped.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.errors import MediaError
from repro.media.frames import Frame

#: The paper's hardware buffer size.
DEFAULT_HW_CAPACITY_BYTES = 240 * 1024


@dataclass
class DecoderStats:
    """Display-side accounting."""

    displayed: int = 0
    skipped_gaps: int = 0  # frame indices jumped over at display time
    stall_events: int = 0
    stall_time_s: float = 0.0
    last_displayed_index: int = 0
    # Start times of stalls longer than one frame period, for the
    # "noticeable to a human observer" analysis.
    stall_starts: List[float] = field(default_factory=list)
    # Incremental frames displayed while their GOP was damaged (some
    # frame since the last I frame never arrived): MPEG cannot decode
    # them cleanly, so they render as the paper's "slight transient
    # degradation of the video image".
    degraded_frames: int = 0
    # Contiguous degradation episodes (ended by the next intact I frame).
    degradation_episodes: int = 0


class HardwareDecoder:
    """Byte-bounded FIFO of frames awaiting display."""

    def __init__(self, capacity_bytes: int = DEFAULT_HW_CAPACITY_BYTES) -> None:
        if capacity_bytes <= 0:
            raise MediaError(f"capacity must be positive, got {capacity_bytes!r}")
        self.capacity_bytes = capacity_bytes
        self._queue: Deque[Frame] = deque()
        self._occupancy_bytes = 0
        self.highest_pushed_index = 0
        self.stats = DecoderStats()
        self._stalled_since: Optional[float] = None
        self._gop_damaged = False

    # ------------------------------------------------------------------
    # Fill side (player streams frames in, display order)
    # ------------------------------------------------------------------
    def has_space_for(self, frame: Frame) -> bool:
        return self._occupancy_bytes + frame.size_bytes <= self.capacity_bytes

    def push(self, frame: Frame) -> None:
        """Stream one frame into the card.  Order must be ascending."""
        if frame.index <= self.highest_pushed_index:
            raise MediaError(
                f"frame {frame.index} pushed after {self.highest_pushed_index}; "
                "the hardware decoder cannot reorder"
            )
        if not self.has_space_for(frame):
            raise MediaError(
                f"decoder overflow: {frame.size_bytes}B into "
                f"{self.capacity_bytes - self._occupancy_bytes}B free"
            )
        self._queue.append(frame)
        self._occupancy_bytes += frame.size_bytes
        self.highest_pushed_index = frame.index

    # ------------------------------------------------------------------
    # Display side (one call per frame period while playing)
    # ------------------------------------------------------------------
    def peek_head_index(self) -> Optional[int]:
        """Index of the next frame to display, or None when dry."""
        return self._queue[0].index if self._queue else None

    def consume_one(self, now: float) -> Optional[Frame]:
        """Display the next frame; None (and a stall) if the card is dry."""
        if not self._queue:
            if self._stalled_since is None:
                self._stalled_since = now
                self.stats.stall_events += 1
                self.stats.stall_starts.append(now)
            return None
        if self._stalled_since is not None:
            self.stats.stall_time_s += now - self._stalled_since
            self._stalled_since = None
        frame = self._queue.popleft()
        self._occupancy_bytes -= frame.size_bytes
        gap = frame.index - self.stats.last_displayed_index - 1
        if gap > 0:
            self.stats.skipped_gaps += gap
            if not self._gop_damaged and not frame.is_intra:
                self.stats.degradation_episodes += 1
            self._gop_damaged = True
        if frame.is_intra:
            # A full image repairs the picture regardless of history.
            self._gop_damaged = False
        elif self._gop_damaged:
            self.stats.degraded_frames += 1
        self.stats.last_displayed_index = frame.index
        self.stats.displayed += 1
        return frame

    def end_stall(self, now: float) -> None:
        """Close an open stall interval (e.g. at teardown or pause)."""
        if self._stalled_since is not None:
            self.stats.stall_time_s += now - self._stalled_since
            self._stalled_since = None

    def flush(self) -> int:
        """Drop all buffered frames (used by random access).

        Returns the number of frames dropped.  The push-order constraint
        is reset by the caller repositioning ``highest_pushed_index`` via
        :meth:`reposition`.
        """
        dropped = len(self._queue)
        self._queue.clear()
        self._occupancy_bytes = 0
        return dropped

    def reposition(self, next_index: int) -> None:
        """Reset the order constraint after a seek."""
        self.highest_pushed_index = next_index - 1
        self.stats.last_displayed_index = next_index - 1
        # A seek lands mid-GOP: the picture is damaged until the next I
        # frame arrives (real players show exactly this).
        self._gop_damaged = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def occupancy_bytes(self) -> int:
        return self._occupancy_bytes

    @property
    def occupancy_frames(self) -> int:
        return len(self._queue)

    @property
    def is_stalled(self) -> bool:
        return self._stalled_since is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<HardwareDecoder {self._occupancy_bytes}/{self.capacity_bytes}B "
            f"{len(self._queue)} frames>"
        )
