"""MPEG-like media model.

The paper stores and ships real MPEG-1 movies; the evaluation, however,
depends only on the *structure* of the stream — frame types (I frames
are full images, P/B frames incremental), frame sizes, and the frame
rate.  This package models exactly that structure: synthetic movies with
a configurable GOP pattern calibrated to the paper's 1.4 Mbps / 30 fps
stream, a replicated movie catalog, and a hardware-decoder model with a
byte-capacity input buffer (the Optibase card's 240 KB).
"""

from repro.media.catalog import MovieCatalog
from repro.media.decoder import DecoderStats, HardwareDecoder
from repro.media.frames import Frame, FrameType, GopPattern
from repro.media.movie import Movie

__all__ = [
    "DecoderStats",
    "Frame",
    "FrameType",
    "GopPattern",
    "HardwareDecoder",
    "Movie",
    "MovieCatalog",
]
