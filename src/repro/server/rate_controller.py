"""Per-client transmission-rate control (Section 4 server side).

The server keeps one current rate per client and adjusts it by one
frame/second per client request.  When an emergency request arrives it
adds a decaying *emergency quantity* on top of the base rate and ignores
all further flow-control requests until the quantity decays to zero.

The decay is iterative truncation — ``q <- floor(q * f)`` every second —
which with the paper's parameters (q=12, f=0.8) yields the sequence
12, 9, 7, 5, 4, 3, 2, 1 summing to exactly the 43 extra frames the paper
reports.  The mild tier (q=6) yields 6, 4, 3, 2, 1 = 16 extra frames
(the paper says 15; its arithmetic is not exactly reconstructible — see
DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ServiceError
from repro.service.protocol import EmergencyLevel, FlowControlMsg, FlowKind


@dataclass(frozen=True)
class EmergencyConfig:
    """Emergency refill parameters (paper Section 4.1)."""

    base_severe: int = 12  # occupancy below 15%
    base_mild: int = 6  # occupancy below 30%
    decay: float = 0.8

    def validate(self) -> None:
        if self.base_mild < 0 or self.base_severe < self.base_mild:
            raise ServiceError(
                f"need 0 <= mild <= severe, got {self.base_mild}/{self.base_severe}"
            )
        if not 0.0 < self.decay < 1.0:
            raise ServiceError(f"decay must be in (0,1), got {self.decay!r}")

    def base_for(self, level: EmergencyLevel) -> int:
        if level == EmergencyLevel.SEVERE:
            return self.base_severe
        return self.base_mild

    def sequence(self, level: EmergencyLevel) -> List[int]:
        """The emergency quantities transmitted second by second."""
        quantities = []
        quantity = self.base_for(level)
        while quantity > 0:
            quantities.append(quantity)
            quantity = math.floor(quantity * self.decay)
        return quantities

    def total_extra_frames(self, level: EmergencyLevel) -> int:
        return sum(self.sequence(level))


class RateController:
    """Transmission rate of one client at the serving server."""

    def __init__(
        self,
        base_rate: int = 30,
        min_rate: int = 1,
        max_rate: int = 60,
        emergency: Optional[EmergencyConfig] = None,
        min_adjust_interval_s: float = 0.5,
        nominal_rate: Optional[int] = None,
    ) -> None:
        if not min_rate <= base_rate <= max_rate:
            raise ServiceError(
                f"need min <= base <= max, got {min_rate}/{base_rate}/{max_rate}"
            )
        self.base_rate = base_rate
        self.min_rate = min_rate
        self.max_rate = max_rate
        self.emergency = emergency or EmergencyConfig()
        self.emergency.validate()
        self.emergency_quantity = 0
        # Base quantity of the quota currently decaying: an emergency at
        # the same (or a lower) level is ignored outright — only a
        # strictly higher level escalates.  Comparing against the
        # *decayed* quantity instead would let a client stuck below the
        # critical threshold re-top the quota every few frames, turning
        # a bounded refill into a sustained rate increase.
        self._quota_base = 0
        # Slew limiting: the base rate moves by at most one frame/s per
        # min_adjust_interval_s.  The client's requests arrive every 4-8
        # received frames (up to ~10/s); applying them all would swing
        # the rate far faster than the buffers respond (the plant
        # integrates at rate-minus-consumption) and the loop degenerates
        # into a refill/overflow limit cycle.  Bounding the slew keeps
        # the occupancy oscillating gently between the water marks, as
        # the paper's Figure 4(c) shows.
        self.min_adjust_interval_s = min_adjust_interval_s
        self._last_adjust_at = float("-inf")
        # The stream's nominal playback rate.  A *repeated* emergency —
        # the previous refill clearly did not hold — with the base rate
        # below nominal means chronic under-delivery (the base collapsed
        # during churn while quota windows masked the rate requests);
        # snap the base back to nominal so the refill actually refills.
        self.nominal_rate = nominal_rate if nominal_rate is not None else base_rate
        self._last_emergency_at: Optional[float] = None
        self.base_rate_resets = 0
        # Counters for the overhead experiments.
        self.requests_applied = 0
        self.requests_ignored = 0
        self.emergencies_started = 0
        self.emergencies_escalated = 0
        self.emergencies_cancelled = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def current_rate(self) -> int:
        """Frames per second to transmit right now."""
        return self.base_rate + self.emergency_quantity

    @property
    def in_emergency(self) -> bool:
        return self.emergency_quantity > 0

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------
    def on_flow_message(
        self, message: FlowControlMsg, now: Optional[float] = None
    ) -> None:
        """Apply one client flow-control request.

        "While the emergency quantity is greater than zero, the server
        ignores all flow control requests from the client" — with one
        exception: an emergency at a strictly *higher level* than the
        active quota *escalates* it.  The client only escalates when the
        refill visibly is not working, so swallowing it would silently
        lose a SEVERE arriving during a decaying MILD quota and could
        never trigger the repeated-emergency base-rate reset.  Repeats
        at the same level stay ignored, per the quote.  Rate adjustments
        are additionally slew-limited (see __init__); pass ``now`` to
        enable the limiter, as the serving session does.
        """
        if message.kind == FlowKind.EMERGENCY:
            level = message.level or EmergencyLevel.SEVERE
            base = self.emergency.base_for(level)
            if self.in_emergency and base <= self._quota_base:
                self.requests_ignored += 1
                return
            escalating = self.in_emergency
            repeated = (
                now is not None
                and self._last_emergency_at is not None
                and now - self._last_emergency_at < 15.0
            )
            if repeated and self.base_rate < self.nominal_rate:
                self.base_rate = min(self.max_rate, self.nominal_rate)
                self.base_rate_resets += 1
            if now is not None:
                self._last_emergency_at = now
            self.emergency_quantity = base
            self._quota_base = base
            if escalating:
                self.emergencies_escalated += 1
            else:
                self.emergencies_started += 1
            return
        if self.in_emergency:
            self.requests_ignored += 1
            return
        if now is not None:
            if now - self._last_adjust_at < self.min_adjust_interval_s:
                self.requests_ignored += 1
                return
            self._last_adjust_at = now
        if message.kind == FlowKind.INCREASE:
            self.base_rate = min(self.max_rate, self.base_rate + 1)
            self.requests_applied += 1
        elif message.kind == FlowKind.DECREASE:
            self.base_rate = max(self.min_rate, self.base_rate - 1)
            self.requests_applied += 1

    def decay_tick(self) -> None:
        """Called once per second: decay the emergency quantity."""
        if self.emergency_quantity > 0:
            self.emergency_quantity = math.floor(
                self.emergency_quantity * self.emergency.decay
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RateController base={self.base_rate}fps "
            f"emergency={self.emergency_quantity}>"
        )
