"""Per-client streaming session at the server.

A session owns the transmission timer for one client: one frame per
``1/rate`` seconds, where the rate comes from the session's
:class:`~repro.server.rate_controller.RateController` and therefore
includes the decaying emergency quota.  Quality adaptation transmits all
I frames and a deterministic subset of the incremental frames.

Batched transmission
--------------------

With ``ServerConfig.batch_window_s > 0`` a session collapses one window
of per-frame timer ticks into a single precomputed burst
(:mod:`repro.net.burst`) whenever the path to the client is loss-free
and deterministic.  Tick times are computed by the same cumulative
``t + 1/rate`` chain the per-frame timer would walk, so frame send and
delivery times are bit-identical to per-frame mode.  Any control input
that would have changed the slow path's behaviour mid-window — a rate
change, an emergency, seek, pause, speed or quality change — revokes
the unsent tail of the window and falls back to per-frame ticking at
exactly the instant the slow path's pending timer would have fired.
``position`` stays exact throughout: during a window it is derived from
the precomputed tick times, so state-sync snapshots see the same offset
a per-frame run would publish.
"""

from __future__ import annotations

from bisect import bisect_right
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.gcs.view import ProcessId, View
from repro.media.movie import Movie
from repro.net.address import Endpoint
from repro.server.rate_controller import RateController
from repro.server.state import OwnerMap, join_regime_order
from repro.service.protocol import (
    ClientRecord,
    CohortSync,
    EndOfStream,
    FramePacket,
)
from repro.sim.core import EventHandle, Simulator
from repro.sim.process import Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.client.flyweight import FlyweightPool
    from repro.server.server import VoDServer

#: End-of-stream notices are repeated over raw UDP for loss tolerance.
EOS_REPEATS = 3
EOS_SPACING_S = 0.1


def batch_ticks(start: float, rate: float, count: int) -> List[float]:
    """The times a per-frame timer would fire at, starting at ``start``.

    Computed by the cumulative ``t = t + 1/rate`` chain — never
    ``start + i / rate`` — so every tick is bit-identical to the float
    the slow path's back-to-back ``call_after(1/rate)`` chain produces.
    """
    delta = 1.0 / rate
    ticks: List[float] = []
    t = start
    for _ in range(count):
        ticks.append(t)
        t = t + delta
    return ticks


class ClientSession:
    """One server->client streaming relationship."""

    def __init__(
        self,
        server: "VoDServer",
        movie: Movie,
        client: ProcessId,
        session_name: str,
        video_endpoint: Endpoint,
        start_offset: int = 1,
        rate_fps: Optional[int] = None,
        quality_fps: Optional[int] = None,
        paused: bool = False,
        epoch: int = 0,
    ) -> None:
        self.server = server
        self.sim: Simulator = server.sim
        self.movie = movie
        self.client = client
        self.session_name = session_name
        self.video_endpoint = video_endpoint
        self._position = max(1, start_offset)
        # Batched-transmission state: the in-flight burst, the tick
        # times it replaces, the first covered position, the tick
        # interval, and the projected per-hop transmitter state carried
        # into a back-to-back follow-up window.
        self._batch = None
        self._batch_ticks: Optional[List[float]] = None
        self._batch_start = 0
        self._batch_delta = 0.0
        self._batch_carry = None
        self.quality_fps = quality_fps
        # VCR speed: the playhead covers positions at speed * rate; at
        # speeds above 1 only a thinned subset of frames (always
        # including I frames) is transmitted, like a VCR's cue mode.
        self.speed = 1.0
        self.paused = paused
        self.epoch = epoch
        self.finished = False
        self.stopped = False
        # Set by the server once a session-group view containing the
        # client is seen; gates the departed-client detection.
        self.saw_client_in_view = False
        self.rate = RateController(
            base_rate=rate_fps if rate_fps is not None else server.config.default_rate_fps,
            min_rate=server.config.min_rate_fps,
            max_rate=server.config.max_rate_fps,
            emergency=server.config.emergency,
            nominal_rate=server.config.default_rate_fps,
        )
        self.frames_sent = 0
        self.bytes_sent = 0
        self.reservation = None
        if server.config.use_qos:
            self._reserve_qos()

        self._send_handle: Optional[EventHandle] = None
        self._decay_timer = Timer(self.sim, 1.0, self._decay_tick)
        if not self.paused:
            self._schedule_next()

    def _reserve_qos(self) -> None:
        """Reserve CBR for the stream + VBR for emergencies (paper
        Section 4.1: "an additional variable bit rate (VBR) channel for
        emergency periods, varying to at most 40% of the constant bit
        rate (CBR) channel")."""
        qos = self.server.domain.network.qos
        if qos is None:
            return
        cbr = self.movie.bitrate_bps() * 1.1  # stream + header slack
        vbr = cbr * self.server.config.qos_vbr_fraction
        self.reservation = qos.reserve(
            self.server.node_id, self.video_endpoint.node, cbr, vbr
        )

    # ------------------------------------------------------------------
    # Position (exact even mid-window)
    # ------------------------------------------------------------------
    @property
    def position(self) -> int:
        """Next frame index to transmit.

        During a batched window the per-frame timer does not run, so the
        value is derived from the precomputed tick times: the ticks at
        or before *now* have logically fired."""
        if self._batch_ticks is not None:
            return self._batch_start + bisect_right(self._batch_ticks, self.sim.now)
        return self._position

    @position.setter
    def position(self, value: int) -> None:
        if self._batch_ticks is not None:
            self._collapse_batch()
        self._position = value

    # ------------------------------------------------------------------
    # Transmission loop
    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        if self.stopped or self.finished or self.paused:
            return
        interval = 1.0 / (self.rate.current_rate() * self.speed)
        self._send_handle = self.sim.call_after(interval, self._transmit_tick)

    def _transmit_tick(self) -> None:
        if self.stopped or self.finished or self.paused:
            return
        if self._position > len(self.movie):
            self._finish()
            return
        if (
            self.server.config.batch_window_s > 0.0
            and self.reservation is None
            and self._try_batch()
        ):
            return
        carry = self._batch_carry
        if carry is not None:
            # Falling back to per-frame right after a window whose tail
            # may still be in flight: fold the window's projected
            # transmitter occupancy into the live link state so this
            # send queues behind it exactly as the slow path would.
            self._batch_carry = None
            for direction, tx_free_after in carry.items():
                if direction._tx_free_at < tx_free_after:
                    direction._tx_free_at = tx_free_after
        frame = self.movie.frame(self._position)
        if self._position_accepts(frame.index, frame.is_intra):
            packet = FramePacket(
                frame=frame,
                epoch=self.epoch,
                server=self.server.process,
                sent_at=self.sim.now,
            )
            flow = self.reservation.flow_id if self.reservation else None
            self.server.send_video(self.video_endpoint, packet, flow_id=flow)
            self.frames_sent += 1
            self.bytes_sent += frame.size_bytes
        self._position += 1
        self._schedule_next()

    # ------------------------------------------------------------------
    # Batched transmission
    # ------------------------------------------------------------------
    def _try_batch(self) -> bool:
        """Replace one window of timer ticks with a precomputed burst.

        Returns False — leaving the caller to take the per-frame path —
        when the window is too short or the route is not eligible for
        the fast path."""
        rate = self.rate.current_rate() * self.speed
        delta = 1.0 / rate
        count = min(
            int(self.server.config.batch_window_s * rate),
            len(self.movie) - self._position + 1,
        )
        if count < 2:
            return False
        ticks = batch_ticks(self.sim.now, rate, count)
        entries = []
        pos = self._position
        for t in ticks:
            frame = self.movie.frame(pos)
            if self._position_accepts(frame.index, frame.is_intra):
                packet = FramePacket(
                    frame=frame,
                    epoch=self.epoch,
                    server=self.server.process,
                    sent_at=t,
                )
                entries.append((t, packet, packet.wire_bytes()))
            pos += 1
        if not entries:
            return False  # thinning rejected the whole window
        burst = self.server.send_video_burst(
            self.video_endpoint,
            entries,
            on_deliver=self._on_burst_deliver,
            on_abort=self._on_burst_abort,
            carry_tx_free=self._batch_carry,
        )
        if burst is None:
            return False
        self._batch = burst
        self._batch_ticks = ticks
        self._batch_start = self._position
        self._batch_delta = delta
        self._batch_carry = None
        # The tick after the window: one float add past the last tick,
        # exactly where the slow path's timer chain would land.
        self._send_handle = self.sim.call_at(
            ticks[-1] + delta, self._boundary_tick
        )
        return True

    def _boundary_tick(self) -> None:
        """First tick after a batched window: fold the window (all its
        ticks are now in the past) and resume normal ticking, which may
        immediately open the next window."""
        self._send_handle = None
        if self._batch_ticks is not None:
            self._position = self._batch_start + len(self._batch_ticks)
            burst = self._batch
            self._batch = None
            self._batch_ticks = None
            if burst is not None and not burst.aborted and burst.revoked == 0:
                # Back-to-back windows: seed the next precompute with
                # this window's projected transmitter state so queueing
                # arithmetic stays exact across the boundary even when
                # the tail of the window is still in flight.
                self._batch_carry = burst.projected_tx_free
        self._transmit_tick()

    def _collapse_batch(self) -> float:
        """Fold the active window back into per-frame state.

        Frames whose send time has not arrived are revoked; ``position``
        becomes a plain integer again.  Returns the simulation time the
        next tick would have fired at under the window's schedule."""
        ticks = self._batch_ticks
        burst = self._batch
        fired = bisect_right(ticks, self.sim.now)
        if fired < len(ticks):
            next_due = ticks[fired]
        else:
            next_due = ticks[-1] + self._batch_delta
        self._position = self._batch_start + fired
        self._batch = None
        self._batch_ticks = None
        self._batch_carry = None
        if burst is not None and not burst.finished:
            burst.revoke_after(self.sim.now)
        return next_due

    def _resync_batch(self) -> None:
        """A control input changed behaviour mid-window: revoke the
        unsent tail and tick per-frame from the next due time — the
        exact instant the slow path's pending timer would have fired."""
        if self._batch_ticks is None:
            return
        next_due = self._collapse_batch()
        if self._send_handle is not None:
            self._send_handle.cancel()
        self._send_handle = self.sim.call_at(next_due, self._transmit_tick)

    def _on_burst_deliver(self, packet, size_bytes: int) -> None:
        """Per-frame accounting, settled at delivery time (end-of-run
        totals match the per-frame path exactly)."""
        self.server.video_bytes_sent += size_bytes
        self.server.video_frames_sent += 1
        self.frames_sent += 1
        self.bytes_sent += packet.frame.size_bytes

    def _on_burst_abort(self) -> None:
        """The network changed under the window and the path no longer
        qualifies; resume per-frame ticking (sends may then blackhole or
        queue, exactly as slow-path sends would on the new topology)."""
        if self._batch_ticks is None:
            return
        next_due = self._collapse_batch()
        if self.stopped or self.paused or self.finished:
            return
        if self._send_handle is not None:
            self._send_handle.cancel()
        self._send_handle = self.sim.call_at(next_due, self._transmit_tick)

    def _position_accepts(self, index: int, is_intra: bool) -> bool:
        """Decide whether the frame at a covered position is sent.

        Quality adaptation and fast playback thin the same way: all I
        frames are kept, incremental frames are down-sampled so the
        transmitted frame rate stays within the target (the client's
        capability for quality, the nominal stream rate for speed)."""
        fps = self.movie.fps
        target = float(fps)
        if self.quality_fps is not None and self.quality_fps < fps:
            target = min(target, float(self.quality_fps))
        if self.speed > 1.0:
            target = min(target, fps / self.speed)
        if target >= fps:
            return True
        if is_intra:
            return True
        return int(index * target) // fps != int((index - 1) * target) // fps

    def _finish(self) -> None:
        self.finished = True
        for repeat in range(EOS_REPEATS):
            self.sim.call_after(
                repeat * EOS_SPACING_S,
                self.server.send_video,
                self.video_endpoint,
                EndOfStream(self.movie.title, self.epoch),
            )
        self._decay_timer.cancel()

    # ------------------------------------------------------------------
    # Control inputs
    # ------------------------------------------------------------------
    def on_flow_message(self, message) -> None:
        quantity_before = self.rate.emergency_quantity
        rate_before = self.rate.current_rate()
        self.rate.on_flow_message(message, now=self.sim.now)
        tel = self.sim.telemetry
        if tel.active and self.rate.current_rate() != rate_before:
            tel.emit(
                "server.rate",
                server=self.server.name,
                client=str(self.client),
                message=message.kind.value,
                rate_fps=self.rate.current_rate(),
                base_fps=self.rate.base_rate,
                emergency=self.rate.emergency_quantity,
            )
            tel.count("server.rate_changes")
        # An emergency (fresh or escalated) raises the rate instantly:
        # re-arm the send timer so the refill starts now rather than
        # after the old interval.
        if self.rate.emergency_quantity > quantity_before:
            self._rearm_now()
        elif self.rate.current_rate() != rate_before:
            # A plain rate change keeps the pending tick; a batched
            # window must shed its now-mistimed tail.
            self._resync_batch()

    def _decay_tick(self) -> None:
        quantity_before = self.rate.emergency_quantity
        self.rate.decay_tick()
        if quantity_before <= 0:
            return
        if self.rate.emergency_quantity != quantity_before:
            # The emergency quota stepped down, changing the rate; like
            # a plain rate change, the slow path keeps its pending tick.
            self._resync_batch()
        tel = self.sim.telemetry
        if tel.active:
            tel.emit(
                "server.emergency.step",
                server=self.server.name,
                client=str(self.client),
                quantity=self.rate.emergency_quantity,
                rate_fps=self.rate.current_rate(),
            )

    def pause(self) -> None:
        if self.paused:
            return
        self.paused = True
        if self._batch_ticks is not None:
            self._collapse_batch()
        if self._send_handle is not None:
            self._send_handle.cancel()
            self._send_handle = None

    def resume(self) -> None:
        if not self.paused:
            return
        self.paused = False
        self._schedule_next()

    def seek(self, position_s: float, epoch: int) -> None:
        self.position = max(
            1, min(int(position_s * self.movie.fps) + 1, len(self.movie))
        )
        self.epoch = epoch
        self.finished = False
        self._rearm_now()

    def set_quality(self, quality_fps: Optional[int]) -> None:
        changed = quality_fps != self.quality_fps
        self.quality_fps = quality_fps
        if changed:
            self._resync_batch()

    def set_speed(self, speed: float) -> None:
        """VCR speed control (1.0 = normal, 2.0 = double-speed cue,
        0.5 = slow motion)."""
        self.speed = max(0.1, min(8.0, float(speed)))
        self._rearm_now()

    def stop(self) -> None:
        """Stop transmitting (hand-off or client departure)."""
        self.stopped = True
        if self._batch_ticks is not None:
            self._collapse_batch()
        if self._send_handle is not None:
            self._send_handle.cancel()
            self._send_handle = None
        self._decay_timer.cancel()
        if self.reservation is not None:
            qos = self.server.domain.network.qos
            if qos is not None:
                qos.release(self.reservation)
            self.reservation = None

    def _rearm_now(self) -> None:
        if self._batch_ticks is not None:
            self._collapse_batch()
        if self._send_handle is not None:
            self._send_handle.cancel()
        self._send_handle = None
        if not (self.stopped or self.paused):
            self._send_handle = self.sim.call_soon(self._transmit_tick)

    # ------------------------------------------------------------------
    # State sharing
    # ------------------------------------------------------------------
    def record(self) -> ClientRecord:
        """Snapshot for the movie-group state sync.

        The advertised rate is the *base* rate: a replica taking over
        resumes at the last steady rate, not mid-emergency.
        """
        return ClientRecord(
            client=self.client,
            movie=self.movie.title,
            session=self.session_name,
            video_endpoint=self.video_endpoint,
            offset=self.position,
            rate_fps=self.rate.base_rate,
            quality_fps=self.quality_fps,
            paused=self.paused,
            epoch=self.epoch,
            server=self.server.process,
            updated_at=self.sim.now,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ClientSession {self.client} {self.movie.title!r} "
            f"pos={self.position} rate={self.rate.current_rate()}fps>"
        )


class CohortSession:
    """All of one server's flyweight viewers of one movie, as one unit.

    A steady-state viewer on a clean link needs no per-client machinery:
    its playhead is pure arithmetic.  A :class:`ClientSession` admitted
    at ``t0`` ticks at ``t0 + k/rate`` (the first transmission one frame
    period after admission), so its published offset at any time ``T``
    is ``base + floor((T - t0) * rate)``.  The cohort stores exactly
    that — ``(base, anchor, epoch)`` per row — and evaluates it on
    demand: at every batch window boundary (finish detection, the
    advancing watermark) and at every state-sync tick (the offsets that
    ride the movie group's single :class:`CohortSync` record).

    The closed form accumulates float error differently from the live
    timer chain (which adds ``1/rate`` repeatedly), but the divergence
    after minutes of streaming is ~1e-10 s while ticks are 1/30 s apart;
    a sync or takeover snapshot only disagrees if it lands within that
    sliver of a tick boundary.  The conformance suite pins a golden
    trace against full-object runs to catch exactly that.

    Membership bookkeeping mirrors the full path's deterministic rules
    one-for-one (``_assign_new_client`` for admission,
    :func:`repro.server.state.rebalance` for view changes), keyed on the
    cohort's own ``assignment`` map instead of the per-client record
    set, so flyweight and full-object runs place every viewer on the
    same replica in the same order.
    """

    def __init__(self, server: "VoDServer", movie: Movie,
                 pool: "FlyweightPool") -> None:
        self.server = server
        self.sim: Simulator = server.sim
        self.movie = movie
        self.pool = pool
        self.rate_fps = server.config.default_rate_fps
        self.delta = 1.0 / self.rate_fps
        # client -> (base offset, anchor time, epoch).  The playhead of
        # a row is derived, never stored: position(T) = base +
        # floor((T - anchor) / delta), clamped to one past the movie.
        self.rows: Dict[ProcessId, Tuple[int, float, int]] = {}
        # The cohort's deterministic client -> server map (all replicas
        # run the identical admission/rebalance rules over it).  An
        # OwnerMap keeps per-server load counts incrementally — the
        # least-loaded admission rule must stay O(servers), not O(rows).
        self.assignment = OwnerMap()
        # Pool indices of our own rows, for O(1) overlap checks against
        # incoming peer shares (connect-race duplicate resolution).
        self._row_indices: set = set()
        # Last CohortSync heard from each peer replica: the takeover
        # resume offsets ("from the offset ... last heard").
        self.peer_shared: Dict[ProcessId, CohortSync] = {}
        self.frames_finished = 0
        self._finish_heap: List[Tuple[float, ProcessId]] = []
        window = server.config.batch_window_s or server.config.sync_interval_s
        self.window_start = self.sim.now
        self._window_timer = Timer(self.sim, window, self._window_tick)
        self._stopped = False

    # ------------------------------------------------------------------
    # Playhead arithmetic
    # ------------------------------------------------------------------
    def position_of(self, client: ProcessId, now: Optional[float] = None) -> int:
        """Next frame index the row's virtual session would transmit."""
        base, anchor, _ = self.rows[client]
        at = self.sim.now if now is None else now
        ticks = int((at - anchor) / self.delta + 1e-9)
        if ticks < 0:
            ticks = 0
        limit = len(self.movie) + 1
        position = base + ticks
        return position if position < limit else limit

    def _window_tick(self) -> None:
        """Advance the cohort by one batch window.

        The columnar playheads are closed-form, so 'advancing' costs
        O(1) plus the rows that finished inside the window — never a
        scan of the cohort."""
        if self._stopped:
            return
        self.window_start = self.sim.now
        while self._finish_heap and self._finish_heap[0][0] <= self.sim.now:
            _, client = heappop(self._finish_heap)
            row = self.rows.get(client)
            if row is None or self.position_of(client) <= len(self.movie):
                continue  # stale entry (row moved or re-anchored)
            self.remove_row(client)
            self.assignment.pop(client, None)
            self.pool.note_finished(client, len(self.movie) + 1)

    # ------------------------------------------------------------------
    # Rows
    # ------------------------------------------------------------------
    def add_row(self, client: ProcessId, offset: int, epoch: int,
                takeover: bool) -> None:
        base = max(1, min(offset, len(self.movie) + 1))
        self.rows[client] = (base, self.sim.now, epoch)
        self._row_indices.add(self.pool.row_of(client))
        self.assignment[client] = self.server.process
        if base <= len(self.movie):
            finish_at = self.sim.now + (len(self.movie) + 1 - base) * self.delta
            heappush(self._finish_heap, (finish_at, client))
        record = self.record_of(client)
        tel = self.sim.telemetry
        if tel.active:
            # Mirror _start_session's span bookkeeping so the QoE/SLO
            # scorecards stay flyweight-aware: a takeover row closes
            # the handoff span the previous owner's crash/shutdown
            # opened, feeding the same take-over latency histogram a
            # full-object takeover would.
            kind = "takeover"
            span = tel.open_span(kind, key=str(client))
            if span is None:
                kind = "rebalance"
                span = tel.open_span(kind, key=str(client))
            cause = span.attrs.get("cause") if span is not None else None
            if cause is None:
                cause = tel.cause_for(f"client:{client}")
            start_fields = dict(
                server=self.server.name,
                client=str(client),
                movie=self.movie.title,
                offset=base,
                rate_fps=self.rate_fps,
                takeover=takeover,
                flyweight=True,
            )
            if cause is not None:
                tel.attribute(f"client:{client}", cause)
                start_fields["cause"] = cause
            tel.emit("server.session.start", **start_fields)
            if takeover and span is not None:
                duration = span.end(to_server=self.server.name)
                if duration is not None:
                    tel.metrics.histogram(
                        f"{kind}.latency_s"
                    ).observe(duration)
        self.pool.note_started(client, self.server.process)
        self.server._notify("on_session_start", self.server, record, takeover)

    def remove_row(self, client: ProcessId) -> Optional[ClientRecord]:
        """Drop a row (shed, finish, or promotion), returning its final
        snapshot.  The assignment entry is left to the caller: a shed
        row keeps its (new) owner, a finished/promoted one is erased."""
        if client not in self.rows:
            return None
        record = self.record_of(client)
        del self.rows[client]
        self._row_indices.discard(self.pool.row_of(client))
        return record

    def record_of(self, client: ProcessId) -> ClientRecord:
        """A full :class:`ClientRecord` view of one row (promotion and
        observer notifications; never the periodic share)."""
        base, anchor, epoch = self.rows[client]
        session, endpoint, quality = self.pool.record_fields(client)
        return ClientRecord(
            client=client,
            movie=self.movie.title,
            session=session,
            video_endpoint=endpoint,
            offset=self.position_of(client),
            rate_fps=self.rate_fps,
            quality_fps=quality,
            paused=False,
            epoch=epoch,
            server=self.server.process,
            updated_at=self.sim.now,
        )

    # ------------------------------------------------------------------
    # State sharing
    # ------------------------------------------------------------------
    def sync_payload(self) -> CohortSync:
        # An empty share still matters: it is how peers learn that our
        # last row left (finished, promoted, or shed) — suppressing it
        # would freeze their view of our share of the assignment.
        now = self.sim.now
        indexed = sorted(
            (self.pool.row_of(client), client) for client in self.rows
        )
        return CohortSync(
            server=self.server.process,
            movie=self.movie.title,
            rows=tuple(index for index, _ in indexed),
            offsets=tuple(
                self.position_of(client, now) for _, client in indexed
            ),
            rate_fps=self.rate_fps,
            at=now,
        )

    def on_peer_sync(self, payload: CohortSync) -> None:
        previous = self.peer_shared.get(payload.server)
        self.peer_shared[payload.server] = payload
        if previous is not None and previous.rows == payload.rows:
            return  # steady state: same rows, nothing to learn
        # Learn the *delta* of the peer's share (state transfer for
        # replicas that missed the original connects), and drop rows
        # the peer no longer lists (finished, or handed elsewhere —
        # the new owner's own sync re-claims moved rows).  Delta, not
        # the full listing: during an admission flood every share
        # differs from the last, and relearning all N rows per share
        # would be quadratic.
        client_of = self.pool.client_of
        me = self.server.process
        previous_rows = set() if previous is None else set(previous.rows)
        payload_rows = set(payload.rows)
        # Connect-race duplicates: post-settle connects arrive in
        # different orders at different replicas, so two replicas can
        # each conclude the least-loaded rule chose *them*.  Resolve
        # like the full path's session-group rule — the smallest
        # process id keeps the client, the other sheds its row.
        for index in payload_rows & self._row_indices:
            if payload.server < me:
                client = client_of(index)
                self.remove_row(client)
                self.assignment[client] = payload.server
                self.server._notify(
                    "on_session_end", self.server, client, False
                )
            # else: we outrank the peer; it sheds on our next share.
        for index in payload_rows - previous_rows:
            client = client_of(index)
            if client in self.rows:
                continue  # duplicate we keep — resolved above
            self.assignment[client] = payload.server
        for index in previous_rows - payload_rows:
            client = client_of(index)
            if self.assignment.get(client) == payload.server:
                del self.assignment[client]
                # The row may still be listed elsewhere (it moved, or
                # a duplicate resolved in another replica's favour):
                # adopt that owner rather than leave a bookkeeping gap
                # a later view change would mis-redistribute.
                owner = self._listed_owner(index)
                if owner is not None:
                    self.assignment[client] = owner
        # A joiner that learned rows mid-settle re-runs the join-regime
        # redistribution, exactly like the full path's settle-window
        # recompute over freshly transferred records (idempotent: rows
        # already in their round-robin place do not move again).
        title = self.movie.title
        view = self.server._movie_views.get(title)
        settle = self.server._assignment_settle_until.get(title, 0.0)
        if (
            view is not None
            and self.sim.now < settle
            and set(view.joined) & view.member_set
        ):
            self.on_view(view)

    def _listed_owner(self, index: int) -> Optional[ProcessId]:
        """The smallest replica whose fresh share lists the row."""
        candidates = []
        if index in self._row_indices:
            candidates.append(self.server.process)
        ttl = 3.0 * self.server.config.sync_interval_s
        for server, sync in self.peer_shared.items():
            if self.sim.now - sync.at > ttl:
                continue
            lo = bisect_right(sync.rows, index) - 1
            if 0 <= lo < len(sync.rows) and sync.rows[lo] == index:
                candidates.append(server)
        return min(candidates) if candidates else None

    def lists_row(self, server: ProcessId, index: int,
                  max_age_s: float) -> bool:
        """Whether ``server``'s share, no older than ``max_age_s``,
        claims the row (the liveness probe behind stale-assignment
        repair on connect retries)."""
        if server == self.server.process:
            return index in self._row_indices
        sync = self.peer_shared.get(server)
        if sync is None or self.sim.now - sync.at > max_age_s:
            return False
        lo = bisect_right(sync.rows, index) - 1
        return 0 <= lo < len(sync.rows) and sync.rows[lo] == index

    def _shared_offset(self, client: ProcessId, previous: ProcessId) -> int:
        """The row's offset as last heard from its previous server."""
        sync = self.peer_shared.get(previous)
        if sync is not None:
            index = self.pool.row_of(client)
            lo = bisect_right(sync.rows, index) - 1
            if 0 <= lo < len(sync.rows) and sync.rows[lo] == index:
                return sync.offsets[lo]
        return self.pool.last_offset(client)

    # ------------------------------------------------------------------
    # Membership changes
    # ------------------------------------------------------------------
    def on_view(self, view: View) -> None:
        """Mirror :func:`repro.server.state.rebalance` over the cohort.

        Join regime: every row is re-distributed round-robin over the
        live servers, newcomers first.  Failure regime: survivors keep
        their rows; orphans go to the least-loaded survivors in sorted
        client order.  All replicas run this on the same view and the
        same assignment map, so they agree without a protocol round."""
        if self._stopped or not self.assignment:
            return
        me = self.server.process
        if set(view.joined) & view.member_set:
            order = join_regime_order(view.members, view.joined)
            moves = {
                client: order[position % len(order)]
                for position, client in enumerate(sorted(self.assignment))
            }
        else:
            moves = {}
            load: Dict[ProcessId, int] = {m: 0 for m in view.members}
            orphans = []
            for client in sorted(self.assignment):
                owner = self.assignment[client]
                if owner in view.member_set:
                    load[owner] += 1
                else:
                    orphans.append((client, owner))
            for client, _ in orphans:
                target = min(view.members, key=lambda m: (load[m], m))
                load[target] += 1
                moves[client] = target
        for client, target in moves.items():
            previous = self.assignment[client]
            if target == previous:
                continue
            self.assignment[client] = target
            if previous == me:
                self.remove_row(client)
                self.server._notify(
                    "on_session_end", self.server, client, False
                )
            if target == me:
                offset = self._shared_offset(client, previous)
                epoch = self.pool.epoch_of(client)
                self.add_row(client, offset, epoch, takeover=True)

    def stop(self) -> None:
        self._stopped = True
        self._window_timer.cancel()

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CohortSession {self.server.name} {self.movie.title!r} "
            f"rows={len(self.rows)}>"
        )
