"""Per-client streaming session at the server.

A session owns the transmission timer for one client: one frame per
``1/rate`` seconds, where the rate comes from the session's
:class:`~repro.server.rate_controller.RateController` and therefore
includes the decaying emergency quota.  Quality adaptation transmits all
I frames and a deterministic subset of the incremental frames.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.gcs.view import ProcessId
from repro.media.movie import Movie
from repro.net.address import Endpoint
from repro.server.rate_controller import RateController
from repro.service.protocol import ClientRecord, EndOfStream, FramePacket
from repro.sim.core import EventHandle, Simulator
from repro.sim.process import Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.server import VoDServer

#: End-of-stream notices are repeated over raw UDP for loss tolerance.
EOS_REPEATS = 3
EOS_SPACING_S = 0.1


class ClientSession:
    """One server->client streaming relationship."""

    def __init__(
        self,
        server: "VoDServer",
        movie: Movie,
        client: ProcessId,
        session_name: str,
        video_endpoint: Endpoint,
        start_offset: int = 1,
        rate_fps: Optional[int] = None,
        quality_fps: Optional[int] = None,
        paused: bool = False,
        epoch: int = 0,
    ) -> None:
        self.server = server
        self.sim: Simulator = server.sim
        self.movie = movie
        self.client = client
        self.session_name = session_name
        self.video_endpoint = video_endpoint
        self.position = max(1, start_offset)
        self.quality_fps = quality_fps
        # VCR speed: the playhead covers positions at speed * rate; at
        # speeds above 1 only a thinned subset of frames (always
        # including I frames) is transmitted, like a VCR's cue mode.
        self.speed = 1.0
        self.paused = paused
        self.epoch = epoch
        self.finished = False
        self.stopped = False
        # Set by the server once a session-group view containing the
        # client is seen; gates the departed-client detection.
        self.saw_client_in_view = False
        self.rate = RateController(
            base_rate=rate_fps if rate_fps is not None else server.config.default_rate_fps,
            min_rate=server.config.min_rate_fps,
            max_rate=server.config.max_rate_fps,
            emergency=server.config.emergency,
            nominal_rate=server.config.default_rate_fps,
        )
        self.frames_sent = 0
        self.bytes_sent = 0
        self.reservation = None
        if server.config.use_qos:
            self._reserve_qos()

        self._send_handle: Optional[EventHandle] = None
        self._decay_timer = Timer(self.sim, 1.0, self._decay_tick)
        if not self.paused:
            self._schedule_next()

    def _reserve_qos(self) -> None:
        """Reserve CBR for the stream + VBR for emergencies (paper
        Section 4.1: "an additional variable bit rate (VBR) channel for
        emergency periods, varying to at most 40% of the constant bit
        rate (CBR) channel")."""
        qos = self.server.domain.network.qos
        if qos is None:
            return
        cbr = self.movie.bitrate_bps() * 1.1  # stream + header slack
        vbr = cbr * self.server.config.qos_vbr_fraction
        self.reservation = qos.reserve(
            self.server.node_id, self.video_endpoint.node, cbr, vbr
        )

    # ------------------------------------------------------------------
    # Transmission loop
    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        if self.stopped or self.finished or self.paused:
            return
        interval = 1.0 / (self.rate.current_rate() * self.speed)
        self._send_handle = self.sim.call_after(interval, self._transmit_tick)

    def _transmit_tick(self) -> None:
        if self.stopped or self.finished or self.paused:
            return
        if self.position > len(self.movie):
            self._finish()
            return
        frame = self.movie.frame(self.position)
        if self._position_accepts(frame.index, frame.is_intra):
            packet = FramePacket(
                frame=frame,
                epoch=self.epoch,
                server=self.server.process,
                sent_at=self.sim.now,
            )
            flow = self.reservation.flow_id if self.reservation else None
            self.server.send_video(self.video_endpoint, packet, flow_id=flow)
            self.frames_sent += 1
            self.bytes_sent += frame.size_bytes
        self.position += 1
        self._schedule_next()

    def _position_accepts(self, index: int, is_intra: bool) -> bool:
        """Decide whether the frame at a covered position is sent.

        Quality adaptation and fast playback thin the same way: all I
        frames are kept, incremental frames are down-sampled so the
        transmitted frame rate stays within the target (the client's
        capability for quality, the nominal stream rate for speed)."""
        fps = self.movie.fps
        target = float(fps)
        if self.quality_fps is not None and self.quality_fps < fps:
            target = min(target, float(self.quality_fps))
        if self.speed > 1.0:
            target = min(target, fps / self.speed)
        if target >= fps:
            return True
        if is_intra:
            return True
        return int(index * target) // fps != int((index - 1) * target) // fps

    def _finish(self) -> None:
        self.finished = True
        for repeat in range(EOS_REPEATS):
            self.sim.call_after(
                repeat * EOS_SPACING_S,
                self.server.send_video,
                self.video_endpoint,
                EndOfStream(self.movie.title, self.epoch),
            )
        self._decay_timer.cancel()

    # ------------------------------------------------------------------
    # Control inputs
    # ------------------------------------------------------------------
    def on_flow_message(self, message) -> None:
        quantity_before = self.rate.emergency_quantity
        rate_before = self.rate.current_rate()
        self.rate.on_flow_message(message, now=self.sim.now)
        tel = self.sim.telemetry
        if tel.active and self.rate.current_rate() != rate_before:
            tel.emit(
                "server.rate",
                server=self.server.name,
                client=str(self.client),
                message=message.kind.value,
                rate_fps=self.rate.current_rate(),
                base_fps=self.rate.base_rate,
                emergency=self.rate.emergency_quantity,
            )
            tel.count("server.rate_changes")
        # An emergency (fresh or escalated) raises the rate instantly:
        # re-arm the send timer so the refill starts now rather than
        # after the old interval.
        if self.rate.emergency_quantity > quantity_before:
            self._rearm_now()

    def _decay_tick(self) -> None:
        quantity_before = self.rate.emergency_quantity
        self.rate.decay_tick()
        if quantity_before <= 0:
            return
        tel = self.sim.telemetry
        if tel.active:
            tel.emit(
                "server.emergency.step",
                server=self.server.name,
                client=str(self.client),
                quantity=self.rate.emergency_quantity,
                rate_fps=self.rate.current_rate(),
            )

    def pause(self) -> None:
        if self.paused:
            return
        self.paused = True
        if self._send_handle is not None:
            self._send_handle.cancel()
            self._send_handle = None

    def resume(self) -> None:
        if not self.paused:
            return
        self.paused = False
        self._schedule_next()

    def seek(self, position_s: float, epoch: int) -> None:
        self.position = max(
            1, min(int(position_s * self.movie.fps) + 1, len(self.movie))
        )
        self.epoch = epoch
        self.finished = False
        self._rearm_now()

    def set_quality(self, quality_fps: Optional[int]) -> None:
        self.quality_fps = quality_fps

    def set_speed(self, speed: float) -> None:
        """VCR speed control (1.0 = normal, 2.0 = double-speed cue,
        0.5 = slow motion)."""
        self.speed = max(0.1, min(8.0, float(speed)))
        self._rearm_now()

    def stop(self) -> None:
        """Stop transmitting (hand-off or client departure)."""
        self.stopped = True
        if self._send_handle is not None:
            self._send_handle.cancel()
            self._send_handle = None
        self._decay_timer.cancel()
        if self.reservation is not None:
            qos = self.server.domain.network.qos
            if qos is not None:
                qos.release(self.reservation)
            self.reservation = None

    def _rearm_now(self) -> None:
        if self._send_handle is not None:
            self._send_handle.cancel()
        self._send_handle = None
        if not (self.stopped or self.paused):
            self._send_handle = self.sim.call_soon(self._transmit_tick)

    # ------------------------------------------------------------------
    # State sharing
    # ------------------------------------------------------------------
    def record(self) -> ClientRecord:
        """Snapshot for the movie-group state sync.

        The advertised rate is the *base* rate: a replica taking over
        resumes at the last steady rate, not mid-emergency.
        """
        return ClientRecord(
            client=self.client,
            movie=self.movie.title,
            session=self.session_name,
            video_endpoint=self.video_endpoint,
            offset=self.position,
            rate_fps=self.rate.base_rate,
            quality_fps=self.quality_fps,
            paused=self.paused,
            epoch=self.epoch,
            server=self.server.process,
            updated_at=self.sim.now,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ClientSession {self.client} {self.movie.title!r} "
            f"pos={self.position} rate={self.rate.current_rate()}fps>"
        )
