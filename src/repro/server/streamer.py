"""Per-client streaming session at the server.

A session owns the transmission timer for one client: one frame per
``1/rate`` seconds, where the rate comes from the session's
:class:`~repro.server.rate_controller.RateController` and therefore
includes the decaying emergency quota.  Quality adaptation transmits all
I frames and a deterministic subset of the incremental frames.

Batched transmission
--------------------

With ``ServerConfig.batch_window_s > 0`` a session collapses one window
of per-frame timer ticks into a single precomputed burst
(:mod:`repro.net.burst`) whenever the path to the client is loss-free
and deterministic.  Tick times are computed by the same cumulative
``t + 1/rate`` chain the per-frame timer would walk, so frame send and
delivery times are bit-identical to per-frame mode.  Any control input
that would have changed the slow path's behaviour mid-window — a rate
change, an emergency, seek, pause, speed or quality change — revokes
the unsent tail of the window and falls back to per-frame ticking at
exactly the instant the slow path's pending timer would have fired.
``position`` stays exact throughout: during a window it is derived from
the precomputed tick times, so state-sync snapshots see the same offset
a per-frame run would publish.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, List, Optional

from repro.gcs.view import ProcessId
from repro.media.movie import Movie
from repro.net.address import Endpoint
from repro.server.rate_controller import RateController
from repro.service.protocol import ClientRecord, EndOfStream, FramePacket
from repro.sim.core import EventHandle, Simulator
from repro.sim.process import Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.server import VoDServer

#: End-of-stream notices are repeated over raw UDP for loss tolerance.
EOS_REPEATS = 3
EOS_SPACING_S = 0.1


def batch_ticks(start: float, rate: float, count: int) -> List[float]:
    """The times a per-frame timer would fire at, starting at ``start``.

    Computed by the cumulative ``t = t + 1/rate`` chain — never
    ``start + i / rate`` — so every tick is bit-identical to the float
    the slow path's back-to-back ``call_after(1/rate)`` chain produces.
    """
    delta = 1.0 / rate
    ticks: List[float] = []
    t = start
    for _ in range(count):
        ticks.append(t)
        t = t + delta
    return ticks


class ClientSession:
    """One server->client streaming relationship."""

    def __init__(
        self,
        server: "VoDServer",
        movie: Movie,
        client: ProcessId,
        session_name: str,
        video_endpoint: Endpoint,
        start_offset: int = 1,
        rate_fps: Optional[int] = None,
        quality_fps: Optional[int] = None,
        paused: bool = False,
        epoch: int = 0,
    ) -> None:
        self.server = server
        self.sim: Simulator = server.sim
        self.movie = movie
        self.client = client
        self.session_name = session_name
        self.video_endpoint = video_endpoint
        self._position = max(1, start_offset)
        # Batched-transmission state: the in-flight burst, the tick
        # times it replaces, the first covered position, the tick
        # interval, and the projected per-hop transmitter state carried
        # into a back-to-back follow-up window.
        self._batch = None
        self._batch_ticks: Optional[List[float]] = None
        self._batch_start = 0
        self._batch_delta = 0.0
        self._batch_carry = None
        self.quality_fps = quality_fps
        # VCR speed: the playhead covers positions at speed * rate; at
        # speeds above 1 only a thinned subset of frames (always
        # including I frames) is transmitted, like a VCR's cue mode.
        self.speed = 1.0
        self.paused = paused
        self.epoch = epoch
        self.finished = False
        self.stopped = False
        # Set by the server once a session-group view containing the
        # client is seen; gates the departed-client detection.
        self.saw_client_in_view = False
        self.rate = RateController(
            base_rate=rate_fps if rate_fps is not None else server.config.default_rate_fps,
            min_rate=server.config.min_rate_fps,
            max_rate=server.config.max_rate_fps,
            emergency=server.config.emergency,
            nominal_rate=server.config.default_rate_fps,
        )
        self.frames_sent = 0
        self.bytes_sent = 0
        self.reservation = None
        if server.config.use_qos:
            self._reserve_qos()

        self._send_handle: Optional[EventHandle] = None
        self._decay_timer = Timer(self.sim, 1.0, self._decay_tick)
        if not self.paused:
            self._schedule_next()

    def _reserve_qos(self) -> None:
        """Reserve CBR for the stream + VBR for emergencies (paper
        Section 4.1: "an additional variable bit rate (VBR) channel for
        emergency periods, varying to at most 40% of the constant bit
        rate (CBR) channel")."""
        qos = self.server.domain.network.qos
        if qos is None:
            return
        cbr = self.movie.bitrate_bps() * 1.1  # stream + header slack
        vbr = cbr * self.server.config.qos_vbr_fraction
        self.reservation = qos.reserve(
            self.server.node_id, self.video_endpoint.node, cbr, vbr
        )

    # ------------------------------------------------------------------
    # Position (exact even mid-window)
    # ------------------------------------------------------------------
    @property
    def position(self) -> int:
        """Next frame index to transmit.

        During a batched window the per-frame timer does not run, so the
        value is derived from the precomputed tick times: the ticks at
        or before *now* have logically fired."""
        if self._batch_ticks is not None:
            return self._batch_start + bisect_right(self._batch_ticks, self.sim.now)
        return self._position

    @position.setter
    def position(self, value: int) -> None:
        if self._batch_ticks is not None:
            self._collapse_batch()
        self._position = value

    # ------------------------------------------------------------------
    # Transmission loop
    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        if self.stopped or self.finished or self.paused:
            return
        interval = 1.0 / (self.rate.current_rate() * self.speed)
        self._send_handle = self.sim.call_after(interval, self._transmit_tick)

    def _transmit_tick(self) -> None:
        if self.stopped or self.finished or self.paused:
            return
        if self._position > len(self.movie):
            self._finish()
            return
        if (
            self.server.config.batch_window_s > 0.0
            and self.reservation is None
            and self._try_batch()
        ):
            return
        carry = self._batch_carry
        if carry is not None:
            # Falling back to per-frame right after a window whose tail
            # may still be in flight: fold the window's projected
            # transmitter occupancy into the live link state so this
            # send queues behind it exactly as the slow path would.
            self._batch_carry = None
            for direction, tx_free_after in carry.items():
                if direction._tx_free_at < tx_free_after:
                    direction._tx_free_at = tx_free_after
        frame = self.movie.frame(self._position)
        if self._position_accepts(frame.index, frame.is_intra):
            packet = FramePacket(
                frame=frame,
                epoch=self.epoch,
                server=self.server.process,
                sent_at=self.sim.now,
            )
            flow = self.reservation.flow_id if self.reservation else None
            self.server.send_video(self.video_endpoint, packet, flow_id=flow)
            self.frames_sent += 1
            self.bytes_sent += frame.size_bytes
        self._position += 1
        self._schedule_next()

    # ------------------------------------------------------------------
    # Batched transmission
    # ------------------------------------------------------------------
    def _try_batch(self) -> bool:
        """Replace one window of timer ticks with a precomputed burst.

        Returns False — leaving the caller to take the per-frame path —
        when the window is too short or the route is not eligible for
        the fast path."""
        rate = self.rate.current_rate() * self.speed
        delta = 1.0 / rate
        count = min(
            int(self.server.config.batch_window_s * rate),
            len(self.movie) - self._position + 1,
        )
        if count < 2:
            return False
        ticks = batch_ticks(self.sim.now, rate, count)
        entries = []
        pos = self._position
        for t in ticks:
            frame = self.movie.frame(pos)
            if self._position_accepts(frame.index, frame.is_intra):
                packet = FramePacket(
                    frame=frame,
                    epoch=self.epoch,
                    server=self.server.process,
                    sent_at=t,
                )
                entries.append((t, packet, packet.wire_bytes()))
            pos += 1
        if not entries:
            return False  # thinning rejected the whole window
        burst = self.server.send_video_burst(
            self.video_endpoint,
            entries,
            on_deliver=self._on_burst_deliver,
            on_abort=self._on_burst_abort,
            carry_tx_free=self._batch_carry,
        )
        if burst is None:
            return False
        self._batch = burst
        self._batch_ticks = ticks
        self._batch_start = self._position
        self._batch_delta = delta
        self._batch_carry = None
        # The tick after the window: one float add past the last tick,
        # exactly where the slow path's timer chain would land.
        self._send_handle = self.sim.call_at(
            ticks[-1] + delta, self._boundary_tick
        )
        return True

    def _boundary_tick(self) -> None:
        """First tick after a batched window: fold the window (all its
        ticks are now in the past) and resume normal ticking, which may
        immediately open the next window."""
        self._send_handle = None
        if self._batch_ticks is not None:
            self._position = self._batch_start + len(self._batch_ticks)
            burst = self._batch
            self._batch = None
            self._batch_ticks = None
            if burst is not None and not burst.aborted and burst.revoked == 0:
                # Back-to-back windows: seed the next precompute with
                # this window's projected transmitter state so queueing
                # arithmetic stays exact across the boundary even when
                # the tail of the window is still in flight.
                self._batch_carry = burst.projected_tx_free
        self._transmit_tick()

    def _collapse_batch(self) -> float:
        """Fold the active window back into per-frame state.

        Frames whose send time has not arrived are revoked; ``position``
        becomes a plain integer again.  Returns the simulation time the
        next tick would have fired at under the window's schedule."""
        ticks = self._batch_ticks
        burst = self._batch
        fired = bisect_right(ticks, self.sim.now)
        if fired < len(ticks):
            next_due = ticks[fired]
        else:
            next_due = ticks[-1] + self._batch_delta
        self._position = self._batch_start + fired
        self._batch = None
        self._batch_ticks = None
        self._batch_carry = None
        if burst is not None and not burst.finished:
            burst.revoke_after(self.sim.now)
        return next_due

    def _resync_batch(self) -> None:
        """A control input changed behaviour mid-window: revoke the
        unsent tail and tick per-frame from the next due time — the
        exact instant the slow path's pending timer would have fired."""
        if self._batch_ticks is None:
            return
        next_due = self._collapse_batch()
        if self._send_handle is not None:
            self._send_handle.cancel()
        self._send_handle = self.sim.call_at(next_due, self._transmit_tick)

    def _on_burst_deliver(self, packet, size_bytes: int) -> None:
        """Per-frame accounting, settled at delivery time (end-of-run
        totals match the per-frame path exactly)."""
        self.server.video_bytes_sent += size_bytes
        self.server.video_frames_sent += 1
        self.frames_sent += 1
        self.bytes_sent += packet.frame.size_bytes

    def _on_burst_abort(self) -> None:
        """The network changed under the window and the path no longer
        qualifies; resume per-frame ticking (sends may then blackhole or
        queue, exactly as slow-path sends would on the new topology)."""
        if self._batch_ticks is None:
            return
        next_due = self._collapse_batch()
        if self.stopped or self.paused or self.finished:
            return
        if self._send_handle is not None:
            self._send_handle.cancel()
        self._send_handle = self.sim.call_at(next_due, self._transmit_tick)

    def _position_accepts(self, index: int, is_intra: bool) -> bool:
        """Decide whether the frame at a covered position is sent.

        Quality adaptation and fast playback thin the same way: all I
        frames are kept, incremental frames are down-sampled so the
        transmitted frame rate stays within the target (the client's
        capability for quality, the nominal stream rate for speed)."""
        fps = self.movie.fps
        target = float(fps)
        if self.quality_fps is not None and self.quality_fps < fps:
            target = min(target, float(self.quality_fps))
        if self.speed > 1.0:
            target = min(target, fps / self.speed)
        if target >= fps:
            return True
        if is_intra:
            return True
        return int(index * target) // fps != int((index - 1) * target) // fps

    def _finish(self) -> None:
        self.finished = True
        for repeat in range(EOS_REPEATS):
            self.sim.call_after(
                repeat * EOS_SPACING_S,
                self.server.send_video,
                self.video_endpoint,
                EndOfStream(self.movie.title, self.epoch),
            )
        self._decay_timer.cancel()

    # ------------------------------------------------------------------
    # Control inputs
    # ------------------------------------------------------------------
    def on_flow_message(self, message) -> None:
        quantity_before = self.rate.emergency_quantity
        rate_before = self.rate.current_rate()
        self.rate.on_flow_message(message, now=self.sim.now)
        tel = self.sim.telemetry
        if tel.active and self.rate.current_rate() != rate_before:
            tel.emit(
                "server.rate",
                server=self.server.name,
                client=str(self.client),
                message=message.kind.value,
                rate_fps=self.rate.current_rate(),
                base_fps=self.rate.base_rate,
                emergency=self.rate.emergency_quantity,
            )
            tel.count("server.rate_changes")
        # An emergency (fresh or escalated) raises the rate instantly:
        # re-arm the send timer so the refill starts now rather than
        # after the old interval.
        if self.rate.emergency_quantity > quantity_before:
            self._rearm_now()
        elif self.rate.current_rate() != rate_before:
            # A plain rate change keeps the pending tick; a batched
            # window must shed its now-mistimed tail.
            self._resync_batch()

    def _decay_tick(self) -> None:
        quantity_before = self.rate.emergency_quantity
        self.rate.decay_tick()
        if quantity_before <= 0:
            return
        if self.rate.emergency_quantity != quantity_before:
            # The emergency quota stepped down, changing the rate; like
            # a plain rate change, the slow path keeps its pending tick.
            self._resync_batch()
        tel = self.sim.telemetry
        if tel.active:
            tel.emit(
                "server.emergency.step",
                server=self.server.name,
                client=str(self.client),
                quantity=self.rate.emergency_quantity,
                rate_fps=self.rate.current_rate(),
            )

    def pause(self) -> None:
        if self.paused:
            return
        self.paused = True
        if self._batch_ticks is not None:
            self._collapse_batch()
        if self._send_handle is not None:
            self._send_handle.cancel()
            self._send_handle = None

    def resume(self) -> None:
        if not self.paused:
            return
        self.paused = False
        self._schedule_next()

    def seek(self, position_s: float, epoch: int) -> None:
        self.position = max(
            1, min(int(position_s * self.movie.fps) + 1, len(self.movie))
        )
        self.epoch = epoch
        self.finished = False
        self._rearm_now()

    def set_quality(self, quality_fps: Optional[int]) -> None:
        changed = quality_fps != self.quality_fps
        self.quality_fps = quality_fps
        if changed:
            self._resync_batch()

    def set_speed(self, speed: float) -> None:
        """VCR speed control (1.0 = normal, 2.0 = double-speed cue,
        0.5 = slow motion)."""
        self.speed = max(0.1, min(8.0, float(speed)))
        self._rearm_now()

    def stop(self) -> None:
        """Stop transmitting (hand-off or client departure)."""
        self.stopped = True
        if self._batch_ticks is not None:
            self._collapse_batch()
        if self._send_handle is not None:
            self._send_handle.cancel()
            self._send_handle = None
        self._decay_timer.cancel()
        if self.reservation is not None:
            qos = self.server.domain.network.qos
            if qos is not None:
                qos.release(self.reservation)
            self.reservation = None

    def _rearm_now(self) -> None:
        if self._batch_ticks is not None:
            self._collapse_batch()
        if self._send_handle is not None:
            self._send_handle.cancel()
        self._send_handle = None
        if not (self.stopped or self.paused):
            self._send_handle = self.sim.call_soon(self._transmit_tick)

    # ------------------------------------------------------------------
    # State sharing
    # ------------------------------------------------------------------
    def record(self) -> ClientRecord:
        """Snapshot for the movie-group state sync.

        The advertised rate is the *base* rate: a replica taking over
        resumes at the last steady rate, not mid-emergency.
        """
        return ClientRecord(
            client=self.client,
            movie=self.movie.title,
            session=self.session_name,
            video_endpoint=self.video_endpoint,
            offset=self.position,
            rate_fps=self.rate.base_rate,
            quality_fps=self.quality_fps,
            paused=self.paused,
            epoch=self.epoch,
            server=self.server.process,
            updated_at=self.sim.now,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ClientSession {self.client} {self.movie.title!r} "
            f"pos={self.position} rate={self.rate.current_rate()}fps>"
        )
