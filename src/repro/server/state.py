"""Shared client state and the deterministic re-distribution rule.

Every serving server multicasts its clients' records in the movie group
twice a second; every replica merges what it hears into a
:class:`MovieState`.  When the movie-group view changes (crash, detach,
or a new server brought up), every member runs :func:`rebalance` on the
same inputs — the sorted record set and the sorted view membership — and
therefore reaches the same assignment without any extra agreement round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.gcs.view import ProcessId
from repro.service.protocol import ClientRecord, StateSync

#: How long a departure tombstone suppresses stale records (seconds).
TOMBSTONE_TTL = 5.0


@dataclass
class MovieState:
    """One replica's knowledge about the clients watching one movie."""

    movie: str
    records: Dict[ProcessId, ClientRecord] = field(default_factory=dict)
    _departed_at: Dict[ProcessId, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def put_record(self, record: ClientRecord, now: float) -> bool:
        """Insert/refresh a record; returns True if it was accepted."""
        departed_at = self._departed_at.get(record.client)
        if departed_at is not None:
            if record.updated_at <= departed_at:
                return False
            del self._departed_at[record.client]
        existing = self.records.get(record.client)
        if existing is not None and existing.updated_at > record.updated_at:
            return False
        self.records[record.client] = record
        return True

    def merge_sync(self, sync: StateSync, now: float) -> None:
        for record in sync.records:
            self.put_record(record, now)
        for client in sync.departed:
            self.mark_departed(client, now)
        self._expire_tombstones(now)

    def mark_departed(self, client: ProcessId, now: float) -> None:
        record = self.records.get(client)
        if record is not None and record.updated_at > now:
            return
        self.records.pop(client, None)
        self._departed_at[client] = now

    def _expire_tombstones(self, now: float) -> None:
        expired = [
            client
            for client, at in self._departed_at.items()
            if now - at > TOMBSTONE_TTL
        ]
        for client in expired:
            del self._departed_at[client]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def record_of(self, client: ProcessId) -> Optional[ClientRecord]:
        return self.records.get(client)

    def clients(self) -> List[ProcessId]:
        return sorted(self.records)

    def recently_departed(self) -> Tuple[ProcessId, ...]:
        return tuple(sorted(self._departed_at))

    def __len__(self) -> int:
        return len(self.records)


class OwnerMap:
    """A client -> server map that maintains per-server load counts.

    The deterministic admission rule is least-loaded-lowest-id; naively
    recomputing the load by scanning the whole map makes admitting N
    clients O(N^2), which is exactly what the flyweight path exists to
    avoid.  This map keeps the counts incrementally, so an admission is
    O(live servers) regardless of population."""

    __slots__ = ("_map", "load")

    def __init__(self) -> None:
        self._map: Dict[ProcessId, ProcessId] = {}
        self.load: Dict[ProcessId, int] = {}

    def __setitem__(self, client: ProcessId, server: ProcessId) -> None:
        previous = self._map.get(client)
        if previous is not None:
            self.load[previous] -= 1
        self._map[client] = server
        self.load[server] = self.load.get(server, 0) + 1

    def __delitem__(self, client: ProcessId) -> None:
        server = self._map.pop(client)
        self.load[server] -= 1

    def pop(self, client: ProcessId, default: object = None):
        if client in self._map:
            server = self._map.pop(client)
            self.load[server] -= 1
            return server
        return default

    def get(self, client: ProcessId, default: object = None):
        return self._map.get(client, default)

    def __getitem__(self, client: ProcessId) -> ProcessId:
        return self._map[client]

    def __contains__(self, client: object) -> bool:
        return client in self._map

    def __iter__(self):
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __bool__(self) -> bool:
        return bool(self._map)

    def load_of(self, server: ProcessId) -> int:
        return self.load.get(server, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OwnerMap({self._map!r})"


def join_regime_order(
    members: Sequence[ProcessId], joined: Sequence[ProcessId]
) -> List[ProcessId]:
    """Server order for the even re-distribution: newcomers first."""
    live = sorted(set(members))
    newcomers = sorted(set(joined) & set(live))
    return newcomers + [server for server in live if server not in newcomers]


def rebalance(
    records: Sequence[ClientRecord],
    servers: Sequence[ProcessId],
    joined: Sequence[ProcessId] = (),
    can_serve: Optional[Callable[[ClientRecord, ProcessId], bool]] = None,
) -> Dict[ProcessId, ProcessId]:
    """Deterministic client re-distribution at a membership change.

    Two regimes, matching the paper's Section 5.2:

    * **A server joined** ("new servers are brought up to alleviate the
      load"): clients are evenly re-distributed round-robin over the
      live servers, *newcomers first*, so a freshly started server picks
      up load immediately — this is why the paper's single client
      migrates to the new server at load-balance time.
    * **Only failures/leaves** ("the remaining servers take over the
      clients of the crashed server"): clients of surviving servers stay
      put; orphans go to the least-loaded survivors.

    ``can_serve(record, server)`` restricts which servers may carry a
    given client — e.g. a prefix-only replica cannot serve a playhead
    beyond its stored prefix (see ``repro.placement``).  It must be a
    pure function of state every replica shares (the catalog and the
    record), or replicas would disagree.  When no eligible server
    exists the restriction is waived for that record: a degraded
    stream beats an orphaned client.

    All replicas call this with the same view (and the commit-supplied
    ``joined`` set) and converging record sets, so they agree without an
    extra protocol round.  Returns a client -> server mapping.
    """
    live = sorted(set(servers))
    if not live:
        return {}
    ordered = sorted(records, key=lambda record: record.client)

    def eligible(record: ClientRecord, pool: List[ProcessId]) -> List[ProcessId]:
        if can_serve is None:
            return pool
        allowed = [server for server in pool if can_serve(record, server)]
        return allowed or pool

    if set(joined) & set(live):
        order = join_regime_order(live, joined)
        assignment = {}
        for position, record in enumerate(ordered):
            pool = eligible(record, order)
            assignment[record.client] = pool[position % len(pool)]
        return assignment

    assignment: Dict[ProcessId, ProcessId] = {}
    load = {server: 0 for server in live}
    orphans: List[ClientRecord] = []
    for record in ordered:
        if record.server in load and (
            can_serve is None or can_serve(record, record.server)
        ):
            assignment[record.client] = record.server
            load[record.server] += 1
        else:
            orphans.append(record)
    for record in orphans:
        pool = eligible(record, live)
        target = min(pool, key=lambda server: (load[server], server))
        assignment[record.client] = target
        load[target] += 1
    return assignment
