"""The VoD server.

Each server streams movies to the clients assigned to it, adjusts each
client's transmission rate from flow-control feedback (with the decaying
emergency quota of Section 4.1), shares per-client state in the movie
groups every half second, and — on membership changes — deterministically
re-distributes clients so that crashed or detached servers are replaced
transparently and new servers pick up load.
"""

from repro.server.rate_controller import EmergencyConfig, RateController
from repro.server.server import ServerConfig, VoDServer
from repro.server.state import MovieState, rebalance
from repro.server.streamer import ClientSession

__all__ = [
    "ClientSession",
    "EmergencyConfig",
    "MovieState",
    "RateController",
    "ServerConfig",
    "VoDServer",
    "rebalance",
]
