"""Policy-based admission control at the server pool.

Kanrar's policy-based traffic handling papers (see PAPERS.md) add the
piece the base reproduction lacks: under overload the pool should not
silently queue everyone, it should *decide* — reject some traffic
classes outright (the client retries on its usual 1 s cadence, an
implicit busy signal) or degrade them to a lower-quality stream that
costs proportionally less transmission bandwidth.

Mechanics
---------
Connect requests are classified into traffic classes
(:func:`classify_request`): ``resume`` (a mid-stream reconnect after a
crash — never throttled, or faults would orphan viewers), ``interactive``
(the client itself asked for reduced quality, e.g. a software decoder)
and ``standard`` (everyone else).  A policy holds one
:class:`TokenBucket` per metered class — per-class buckets are the
starvation-fairness mechanism: a flash crowd draining the ``standard``
bucket cannot starve ``interactive`` viewers, and vice versa.

Determinism
-----------
The deterministic replica admission rule (every replica sees the open
group connect and computes the same least-loaded owner) stays exactly
as it is; the policy is consulted *only by the chosen owner*, after the
``chosen == self.process`` check in ``VoDServer._on_connect``.  Bucket
state therefore lives on one policy object shared by the whole pool
(threaded through :class:`~repro.service.deployment.Deployment`) and
never diverges between replicas.  Buckets refill lazily from the
simulation clock — no timers, no RNG draws.

Scenario specs carry the frozen, declarative :class:`AdmissionSpec`;
``build()`` makes the fresh stateful policy for one run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ServiceError

#: Traffic classes a connect can land in.
RESUME = "resume"
INTERACTIVE = "interactive"
STANDARD = "standard"


def classify_request(request) -> str:
    """The traffic class of one connect request.

    ``resume_offset > 1`` means the client already played something —
    this is crash-recovery or reconnect traffic, which admission must
    never block (the fault-tolerance contract owns those clients).
    A request with its own ``quality_fps`` is an interactive/low-rate
    client (software decoder); the rest are standard full-rate viewers.
    """
    if request.resume_offset > 1:
        return RESUME
    if request.quality_fps is not None:
        return INTERACTIVE
    return STANDARD


class TokenBucket:
    """A deterministic token bucket with lazy, clock-driven refill.

    ``capacity`` bounds the burst; ``rate_per_s`` tokens accrue per
    second of simulated time (fractions accumulate).  ``take`` is the
    only mutator and draws no randomness, so shared pool-level buckets
    keep the simulation deterministic.
    """

    def __init__(self, capacity: float, rate_per_s: float) -> None:
        if capacity <= 0:
            raise ServiceError(f"bucket capacity must be > 0, got {capacity!r}")
        if rate_per_s < 0:
            raise ServiceError(f"refill rate must be >= 0, got {rate_per_s!r}")
        self.capacity = float(capacity)
        self.rate_per_s = float(rate_per_s)
        self.tokens = float(capacity)
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last_refill:
            self.tokens = min(
                self.capacity,
                self.tokens + (now - self._last_refill) * self.rate_per_s,
            )
            self._last_refill = now

    def available(self, now: float) -> float:
        """Tokens on hand at ``now`` (refills as a side effect)."""
        self._refill(now)
        return self.tokens

    def take(self, now: float, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if on hand; False leaves state intact
        (other than the lazy refill)."""
        self._refill(now)
        if self.tokens + 1e-12 >= amount:
            self.tokens -= amount
            return True
        return False


@dataclass(frozen=True)
class AdmissionDecision:
    """What the policy wants done with one connect request.

    ``action`` is ``admit``, ``degrade`` or ``reject``.  For degrades
    ``quality_fps`` is the stream rate the session is granted instead
    of the full rate.
    """

    action: str
    tclass: str
    quality_fps: Optional[int] = None

    @property
    def admitted(self) -> bool:
        return self.action != "reject"


class AdmissionPolicy:
    """Base policy: classify, then decide admit/degrade/reject."""

    name = "admission"

    def decide(self, now: float, request) -> AdmissionDecision:
        raise NotImplementedError


class AdmitAll(AdmissionPolicy):
    """The historical behaviour: every connect is admitted as-is."""

    name = "open"

    def decide(self, now: float, request) -> AdmissionDecision:
        return AdmissionDecision(action="admit", tclass=classify_request(request))


class _TokenBucketPolicy(AdmissionPolicy):
    """Shared machinery: one bucket per metered class, exempt classes
    pass straight through."""

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        classes: Tuple[str, ...] = (STANDARD, INTERACTIVE),
        exempt: Tuple[str, ...] = (RESUME,),
    ) -> None:
        self.exempt = tuple(exempt)
        self.buckets: Dict[str, TokenBucket] = {
            tclass: TokenBucket(burst, rate_per_s) for tclass in classes
        }

    def _has_token(self, now: float, tclass: str) -> bool:
        if tclass in self.exempt:
            return True
        bucket = self.buckets.get(tclass)
        if bucket is None:
            # Unmetered class: treat like exempt (fail open, never
            # strand a viewer because a class was not configured).
            return True
        return bucket.take(now)

    def _overload(self, now: float, request) -> Optional[str]:
        """The traffic class if the request exceeds its budget, else None."""
        tclass = classify_request(request)
        if self._has_token(now, tclass):
            return None
        return tclass


class RejectOverload(_TokenBucketPolicy):
    """Token-bucket admission, rejecting everything over budget.

    The rejected client keeps retrying on its 1 s connect cadence and
    gets in once the class bucket has refilled — a deterministic
    busy-signal queue."""

    name = "reject"

    def decide(self, now: float, request) -> AdmissionDecision:
        tclass = classify_request(request)
        if self._has_token(now, tclass):
            return AdmissionDecision(action="admit", tclass=tclass)
        return AdmissionDecision(action="reject", tclass=tclass)


class DegradeOverload(_TokenBucketPolicy):
    """Token-bucket admission, degrading overload to a lower quality.

    Over-budget requests are admitted immediately but granted
    ``degraded_fps`` instead of the full stream rate — everyone gets a
    picture, the over-budget picture just costs less bandwidth."""

    name = "degrade"

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        degraded_fps: int = 12,
        classes: Tuple[str, ...] = (STANDARD, INTERACTIVE),
        exempt: Tuple[str, ...] = (RESUME,),
    ) -> None:
        super().__init__(rate_per_s, burst, classes=classes, exempt=exempt)
        if degraded_fps < 1:
            raise ServiceError(f"degraded_fps must be >= 1, got {degraded_fps!r}")
        self.degraded_fps = int(degraded_fps)

    def decide(self, now: float, request) -> AdmissionDecision:
        tclass = classify_request(request)
        if self._has_token(now, tclass):
            return AdmissionDecision(action="admit", tclass=tclass)
        quality = self.degraded_fps
        if request.quality_fps is not None:
            quality = min(quality, int(request.quality_fps))
        return AdmissionDecision(
            action="degrade", tclass=tclass, quality_fps=quality
        )


@dataclass(frozen=True)
class AdmissionSpec:
    """Frozen, declarative description of a pool admission policy.

    Scenario specs and matrix cells carry one of these (hashable,
    comparable); :meth:`build` creates the fresh stateful policy object
    for a single run.  ``mode`` is ``open``, ``reject`` or ``degrade``.
    """

    mode: str = "open"
    rate_per_s: float = 0.5
    burst: float = 3.0
    degraded_fps: int = 12

    def build(self) -> Optional[AdmissionPolicy]:
        """The policy instance, or None for ``open`` (= no policy hook,
        byte-for-byte the historical admission path)."""
        if self.mode == "open":
            return None
        if self.mode == "reject":
            return RejectOverload(self.rate_per_s, self.burst)
        if self.mode == "degrade":
            return DegradeOverload(
                self.rate_per_s, self.burst, degraded_fps=self.degraded_fps
            )
        raise ServiceError(f"unknown admission mode {self.mode!r}")
