"""The VoD server process.

Responsibilities (paper Sections 3 and 5):

* join the *server group* and answer client connect/catalog requests
  addressed to the abstract group;
* join one *movie group* per replicated movie, multicast per-client
  state there every half second, and on every membership change run the
  deterministic re-distribution so each client is served by exactly one
  live replica;
* per client, join the *session group*, stream frames over UDP at the
  controlled rate, and react to flow-control and VCR commands;
* take over clients of crashed/detached replicas from their last shared
  offset and rate, and shed clients to newly started replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError, SessionError
from repro.gcs.domain import GcsDomain
from repro.gcs.endpoint import GcsEndpoint, GroupListener
from repro.gcs.view import ProcessId, View
from repro.media.catalog import MovieCatalog
from repro.net.address import VIDEO_PORT, Endpoint
from repro.net.udp import UdpSocket
from repro.server.rate_controller import EmergencyConfig
from repro.server.state import MovieState, join_regime_order, rebalance
from repro.server.streamer import ClientSession, CohortSession
from repro.service.controller import AdmissionQueue
from repro.service.protocol import (
    SERVER_GROUP,
    ClientRecord,
    CohortSync,
    ConnectRequest,
    FlowControlMsg,
    ListMoviesReply,
    ListMoviesRequest,
    QualityNotice,
    StateSync,
    VcrCommand,
    VcrOp,
    movie_group,
)
from repro.sim.process import Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.client.flyweight import FlyweightPool


@dataclass(frozen=True)
class ServerConfig:
    """Server tunables, defaulted to the paper's prototype values."""

    default_rate_fps: int = 30
    min_rate_fps: int = 1
    max_rate_fps: int = 60
    sync_interval_s: float = 0.5  # "servers synchronize every 1/2 second"
    emergency: EmergencyConfig = field(default_factory=EmergencyConfig)
    # When true and the network has a QoS manager installed, each
    # session reserves a CBR channel for the stream plus a VBR channel
    # of 40% for emergency periods (the paper's Section 4.1 sizing and
    # its Section 8 ATM plan).
    use_qos: bool = False
    # Batched transmission: when positive, each streaming session
    # collapses up to this many seconds of per-frame timer ticks into a
    # single precomputed burst whenever the path to the client is
    # loss-free and deterministic (see repro.net.burst).  Zero keeps the
    # classic one-event-per-frame transmission loop.
    batch_window_s: float = 0.0
    qos_vbr_fraction: float = 0.4
    # Session-group multiplexing: when true the server joins no
    # per-client session group.  Flow control and VCR commands arrive
    # point-to-point (routed by sender), migrations are announced by
    # the ``server`` field of the frames themselves, and the movie
    # group's batched state share is the only per-client control-plane
    # traffic.  Must match the clients' ``ClientConfig.session_mux``.
    session_mux: bool = False


class VoDServer:
    """One VoD server instance."""

    def __init__(
        self,
        domain: GcsDomain,
        node_id: int,
        name: str,
        catalog: MovieCatalog,
        config: Optional[ServerConfig] = None,
        endpoint: Optional[GcsEndpoint] = None,
        admission_policy: Optional[Any] = None,
    ) -> None:
        self.domain = domain
        self.sim = domain.sim
        self.name = name
        self.catalog = catalog
        self.config = config or ServerConfig()
        # Pool-level admission policy (see repro.server.admission).
        # None = the historical admit-all path, with no policy hook at
        # all.  The policy object is shared by every replica but only
        # ever consulted by the deterministically chosen owner, so its
        # bucket state cannot diverge between replicas.
        self.admission_policy = admission_policy
        self.endpoint = endpoint or domain.create_endpoint(node_id)
        self.process = self.endpoint.process_id(name)
        self.node_id = self.endpoint.daemon_id
        self.running = True

        self.video_socket = UdpSocket(
            self.domain.network.node(self.node_id), VIDEO_PORT
        )
        self.sessions: Dict[ProcessId, ClientSession] = {}
        self._session_handles: Dict[ProcessId, Any] = {}
        self.movie_states: Dict[str, MovieState] = {}
        self._movie_handles: Dict[str, Any] = {}
        self._movie_views: Dict[str, View] = {}
        # Deterministic client->server assignment, recomputed per view
        # (and while the view is young, so joiners that receive state
        # transfer converge) then extended incrementally for clients
        # that connect mid-view.
        self._assignments: Dict[str, Dict[ProcessId, ProcessId]] = {}
        self._assignment_view: Dict[str, Any] = {}
        self._assignment_settle_until: Dict[str, float] = {}
        # The previous periodic sync per movie: re-multicast as state
        # transfer when a new replica joins.  Deliberately one sync
        # period stale — the paper's conservative handoff re-transmits
        # the last ~0.5 s of frames rather than risk a gap.
        self._last_sync: Dict[str, StateSync] = {}
        self.video_bytes_sent = 0
        self.video_frames_sent = 0
        self.state_sync_bytes_sent = 0
        self._sync_counter: Dict[str, int] = {}
        # Read-only lifecycle observers (see repro.faulting): objects
        # optionally implementing on_server_crash(server, clients),
        # on_server_shutdown(server, clients), on_session_start(server,
        # record, takeover) and on_session_end(server, client, departed).
        self.observers: List[Any] = []
        # Connects that land while a movie group's view is settling are
        # queued, not admitted: admitting mid-settle grows the record
        # set under the join-regime full recompute, which then bounces
        # already-admitted clients between replicas on every arrival.
        self.admission = AdmissionQueue(self)
        # Flyweight viewer pools by movie title (see
        # repro.client.flyweight) and the cohort sessions serving their
        # rows.  A cohort is the flyweight counterpart of the per-client
        # session set: one object per movie, playheads as arithmetic.
        self._flyweights: Dict[str, "FlyweightPool"] = {}
        self._cohorts: Dict[str, CohortSession] = {}
        self._last_cohort_sync: Dict[str, CohortSync] = {}

        self._server_group_handle = self.endpoint.join(
            SERVER_GROUP,
            name,
            GroupListener(on_view=self._on_server_group_view),
        )
        self.endpoint.register_open_group_handler(
            SERVER_GROUP, self._on_open_request
        )
        if self.config.session_mux:
            self.endpoint.register_p2p_handler(name, self._on_p2p)
        for title in catalog.movies_of(name):
            self._join_movie_group(title)

        self._sync_timer = Timer(
            self.sim,
            self.config.sync_interval_s,
            self._sync_tick,
            start_delay=self.sim.rng(f"server.sync.{name}").uniform(
                0.0, self.config.sync_interval_s
            ),
        )

    # ==================================================================
    # Lifecycle
    # ==================================================================
    def add_movie(self, title: str, prefix_s: Optional[float] = None) -> None:
        """Start serving a replica of ``title`` ("added on the fly").

        ``prefix_s`` stores only the first ``prefix_s`` seconds (an
        edge/prefix cache, see ``repro.placement``): the server admits
        viewers near the start of the title and hands them off to a
        full replica before the playhead leaves the prefix."""
        self.catalog.place_replica(title, self.name, prefix_s=prefix_s)
        self._join_movie_group(title)

    def drop_movie(self, title: str) -> None:
        """Stop serving a replica of ``title`` (the source side of a
        live migration, see :class:`repro.placement.Rebalancer`).

        A graceful, crash-shaped departure scoped to one movie group:
        current viewers get "takeover" spans (reason="migration"), a
        final state share freshens their offsets, sessions end
        non-departed, and the group leave makes the surviving replicas
        adopt the orphans through the ordinary failure-regime
        redistribution — the same machinery a crash exercises, minus
        the detection latency."""
        handle = self._movie_handles.get(title)
        if handle is None:
            return
        clients = [
            client
            for client, session in self.sessions.items()
            if session.movie.title == title
        ]
        tel = self.sim.telemetry
        if tel.active and clients:
            cause = tel.cause
            if cause is None:
                cause = tel.new_cause(f"migration.{self.name}.{title}")
            for client in clients:
                tel.attribute(f"client:{client}", cause)
                tel.span(
                    "takeover", key=str(client),
                    reason="migration", from_server=self.name, cause=cause,
                )
        # Freshen every viewer's offset in the shared state *before*
        # leaving — the paper's conservative handoff — then stop the
        # sessions without tombstoning the clients.
        if handle.is_member:
            self._sync_movie(title)
        for client in clients:
            self._end_session(client, departed=False)
        cohort = self._cohorts.pop(title, None)
        if cohort is not None:
            cohort.stop()
        self._movie_handles.pop(title, None)
        handle.leave()
        self.movie_states.pop(title, None)
        self._movie_views.pop(title, None)
        self._assignments.pop(title, None)
        self._assignment_view.pop(title, None)
        self._assignment_settle_until.pop(title, None)
        self._last_sync.pop(title, None)
        self._last_cohort_sync.pop(title, None)
        self._sync_counter.pop(title, None)
        self.catalog.remove_replica(title, self.name)

    def attach_flyweight(self, pool: "FlyweightPool") -> None:
        """Serve ``pool``'s viewers as flyweight cohort rows.

        Every replica of the pool's movie must attach the same pool
        (Deployment.attach_flyweight does, present and future servers
        alike) — the deterministic placement rules assume all replicas
        can resolve row indices to viewers."""
        self._flyweights[pool.movie_title] = pool

    def _cohort(self, title: str) -> CohortSession:
        cohort = self._cohorts.get(title)
        if cohort is None:
            pool = self._flyweights.get(title)
            if pool is None:
                raise ServiceError(f"no flyweight pool attached for {title!r}")
            cohort = CohortSession(self, self.catalog.movie(title), pool)
            self._cohorts[title] = cohort
        return cohort

    def shutdown(self) -> None:
        """Graceful detach: leave all groups so peers react immediately."""
        if not self.running:
            return
        self.running = False
        served = self.served_clients()
        tel = self.sim.telemetry
        if tel.active:
            cause = self._departure_cause(tel, "shutdown", served)
            tel.emit(
                "server.shutdown", server=self.name, served=len(served),
                cause=cause,
            )
            for client in served:
                tel.span(
                    "takeover", key=str(client),
                    reason="shutdown", from_server=self.name, cause=cause,
                )
        for client in list(self.sessions):
            self._end_session(client, departed=False)
        for cohort in self._cohorts.values():
            cohort.stop()
        self._sync_timer.cancel()
        self.admission.close()
        self.endpoint.shutdown()
        if not self.video_socket.closed:
            self.video_socket.close()
        self._notify("on_server_shutdown", self, served)

    def crash(self) -> None:
        """Fail-stop together with the hosting node."""
        if not self.running:
            return
        self.running = False
        served = self.served_clients()
        tel = self.sim.telemetry
        if tel.active:
            cause = self._departure_cause(tel, "crash", served)
            tel.emit(
                "server.crash", server=self.name, served=len(served),
                cause=cause,
            )
            for client in served:
                tel.span(
                    "takeover", key=str(client),
                    reason="crash", from_server=self.name, cause=cause,
                )
        for session in self.sessions.values():
            session.stop()
        self.sessions.clear()
        for cohort in self._cohorts.values():
            cohort.stop()
        self._sync_timer.cancel()
        self.admission.close()
        self.domain.network.node(self.node_id).crash()
        self.endpoint.crash()
        self._notify("on_server_crash", self, served)

    def _departure_cause(self, tel: Any, label: str, served: Any) -> str:
        """The causal id for this server's departure (crash/shutdown).

        Inherits the ambient cause when the departure happens inside a
        fault-injector episode; a spontaneous departure mints its own.
        The id is then attributed to the dead node (the failure detector
        looks it up at suspicion time) and to every served client (the
        client looks it up when the replacement stream reaches it) —
        that is how the cause survives the asynchronous gap between the
        crash and its observable consequences.  Only reachable from
        inside an ``if tel.active:`` guard.
        """
        cause = tel.cause
        if cause is None:
            cause = tel.new_cause(f"{label}.{self.name}")
        tel.attribute(f"node:{self.node_id}", cause)
        for client in served:
            tel.attribute(f"client:{client}", cause)
        return cause

    def _notify(self, event: str, *args: Any) -> None:
        for observer in self.observers:
            callback = getattr(observer, event, None)
            if callback is not None:
                callback(*args)

    @property
    def n_clients(self) -> int:
        return len(self.sessions) + sum(
            len(cohort) for cohort in self._cohorts.values()
        )

    def served_clients(self) -> Tuple[ProcessId, ...]:
        """Every client this server currently serves — full per-client
        sessions and flyweight cohort rows alike."""
        clients = list(self.sessions)
        for cohort in self._cohorts.values():
            clients.extend(cohort.rows)
        return tuple(clients)

    # ==================================================================
    # Video plane
    # ==================================================================
    def send_video(
        self, endpoint: Endpoint, payload: Any, flow_id: int = None
    ) -> None:
        if not self.running or self.video_socket.closed:
            return
        size = payload.wire_bytes()
        self.video_bytes_sent += size
        self.video_frames_sent += 1
        self.video_socket.sendto(endpoint, payload, size, flow_id=flow_id)

    def send_video_burst(
        self, endpoint: Endpoint, entries, on_deliver=None, on_abort=None,
        carry_tx_free=None,
    ):
        """Start a precomputed batched video transfer toward a client.

        Returns a :class:`repro.net.burst.BurstTransfer` or None when
        the path is ineligible (the session then streams per-frame).
        ``video_frames_sent``/``video_bytes_sent`` are settled by the
        caller's ``on_deliver`` as each frame lands."""
        if not self.running or self.video_socket.closed:
            return None
        return self.video_socket.sendto_burst(
            endpoint, entries, on_deliver=on_deliver, on_abort=on_abort,
            carry_tx_free=carry_tx_free,
        )

    # ==================================================================
    # Connect path (open-group requests to the server group)
    # ==================================================================
    def _on_server_group_view(self, view: View) -> None:
        """Server-group membership is informational (connect fan-in and
        catalog queries use it); per-movie logic lives in movie groups."""

    def _on_open_request(self, sender: ProcessId, payload: Any) -> None:
        if not self.running:
            return
        if isinstance(payload, ConnectRequest):
            self._on_connect(payload)
        elif isinstance(payload, ListMoviesRequest):
            self._on_list_movies(payload)

    def _on_list_movies(self, request: ListMoviesRequest) -> None:
        # Exactly one member answers: the server-group coordinator.
        view = self._server_group_handle.view
        if view is None or view.coordinator != self.process:
            return
        reply = ListMoviesReply(tuple(self.catalog.titles()))
        self.endpoint.send_p2p(
            request.client, reply, reply.wire_bytes(), sender_name=self.name
        )

    def _on_connect(self, request: ConnectRequest, sync: bool = True) -> None:
        title = request.movie
        state = self.movie_states.get(title)
        if state is None:
            return  # we do not hold this movie
        if self.admission.defer(title, request):
            return  # the movie group's view is still settling
        view = self._movie_views.get(title)
        if view is None:
            return
        pool = self._flyweights.get(title)
        if pool is not None and pool.owns(request.client):
            self._cohort_connect(title, request, sync)
            return
        session = self.sessions.get(request.client)
        if session is not None and session.movie.title == title:
            # Already serving this client: the retry raced a stale
            # record.  Refresh it instead of double-starting (which
            # would leak the live session and re-join its group).
            state.put_record(session.record(), self.sim.now)
            return
        existing = state.record_of(request.client)
        fresh = (
            existing is not None
            and self.sim.now - existing.updated_at
            <= 3.0 * self.config.sync_interval_s
        )
        if fresh and existing.server in view.member_set:
            return  # already being served; duplicate connect retry
        if not fresh:
            # A (re)connect with no fresh record means any cached
            # placement never materialised (e.g. replicas momentarily
            # disagreed and each thought the other would serve).  Keep
            # honouring it and the retry loops forever; recompute from
            # converged state instead.
            self._assignments.get(title, {}).pop(request.client, None)
        chosen = self._assign_new_client(
            title, request.client, offset=max(1, request.resume_offset)
        )
        if chosen != self.process:
            return
        quality_fps = request.quality_fps
        if self.admission_policy is not None:
            decision = self._admission_check(title, request)
            if not decision.admitted:
                # The client's 1 s connect retry is the busy-signal
                # queue; the cached assignment stays (every replica
                # still holds it, and all of them pop it together on
                # the retry's no-fresh-record recompute).
                return
            if decision.action == "degrade":
                quality_fps = decision.quality_fps
        record = ClientRecord(
            client=request.client,
            movie=title,
            session=request.session,
            video_endpoint=request.video_endpoint,
            offset=max(1, request.resume_offset),
            rate_fps=self.config.default_rate_fps,
            quality_fps=quality_fps,
            paused=False,
            epoch=request.resume_epoch,
            server=self.process,
            updated_at=self.sim.now,
        )
        state.put_record(record, self.sim.now)
        self._start_session(record)
        if quality_fps != request.quality_fps:
            # Policy degrade: tell the client its granted quality so the
            # pump expects the thinned stream (and reconnects carry it).
            notice = QualityNotice(
                movie=title, quality_fps=quality_fps,
                epoch=request.resume_epoch,
            )
            self.endpoint.send_p2p(
                request.client, notice, notice.wire_bytes(),
                sender_name=self.name,
            )
        if sync:
            self._sync_movie(title)  # propagate the new client promptly

    def _admission_check(self, title: str, request: ConnectRequest):
        """Consult the pool admission policy — owner side only.

        Only the deterministically chosen owner calls this, so the
        shared policy's bucket state advances identically no matter
        which replicas saw the connect.  Emits ``server.admission.*``
        telemetry for the QoE scorecards and the SLO monitor.
        """
        decision = self.admission_policy.decide(self.sim.now, request)
        tel = self.sim.telemetry
        if tel.active:
            fields = dict(
                server=self.name,
                client=str(request.client),
                movie=title,
                tclass=decision.tclass,
            )
            if decision.quality_fps is not None:
                fields["quality_fps"] = decision.quality_fps
                fields["base_fps"] = self.config.default_rate_fps
            tel.emit(f"server.admission.{decision.action}", **fields)
            tel.count(f"server.admission.{decision.action}")
        return decision

    def _assign_new_client(
        self, title: str, client: ProcessId, offset: int = 1
    ) -> ProcessId:
        """Deterministic admission: extend the cached assignment with a
        new client at the least-loaded replica (ties to the lowest id).

        Every replica that sees the connect request runs the same rule
        over (converging) assignment state, so they agree on who serves
        the newcomer without an explicit agreement round.  ``offset``
        (the client's playhead) filters out prefix-only replicas whose
        stored prefix the session would outrun — a function of the
        shared catalog, so the filter is replica-deterministic too.
        """
        view = self._movie_views[title]
        assignment = self._assignments.setdefault(title, {})
        existing = assignment.get(client)
        if existing is not None and existing in view.member_set:
            return existing
        members = self._eligible_members(title, view.members, offset)
        if (
            self.sim.now < self._assignment_settle_until.get(title, 0.0)
            and view.joined
        ):
            # The view is still settling after a join: place the
            # newcomer where the settle-window full recompute (join
            # regime, round-robin newcomers-first) will put it, or the
            # client bounces between the two answers.
            known = sorted(
                set(self.movie_states[title].records)
                | set(assignment)
                | {client}
            )
            order = join_regime_order(members, view.joined)
            chosen = order[known.index(client) % len(order)]
        else:
            load = {member: 0 for member in view.members}
            for server in assignment.values():
                if server in load:
                    load[server] += 1
            chosen = min(members, key=lambda member: (load[member], member))
        assignment[client] = chosen
        return chosen

    def _handoff_margin_frames(self, title: str) -> int:
        """How far before the prefix boundary a handoff must trigger:
        two sync periods of playback, so the successor adopts the
        session before the prefix runs dry."""
        movie = self.catalog.movie(title)
        return max(1, int(2.0 * self.config.sync_interval_s * movie.fps))

    def _eligible_members(
        self, title: str, members: Sequence[ProcessId], offset: int
    ) -> List[ProcessId]:
        """Members whose stored copy can carry a session at ``offset``
        past the handoff margin.  Falls back to all members when nothing
        qualifies — a degraded stream beats an orphaned client."""
        if not self.catalog.prefixed_replicas(title):
            return list(members)
        margin = self._handoff_margin_frames(title)
        eligible = []
        for member in members:
            limit = self.catalog.prefix_frames(title, member.name)
            if limit is None or offset < limit - margin:
                eligible.append(member)
        return eligible or list(members)

    def _can_serve_rule(self, title: str):
        """The ``can_serve`` predicate for :func:`rebalance`, or None
        when no replica of ``title`` is prefix-limited (the common case
        — keeps the recompute allocation-free)."""
        if not self.catalog.prefixed_replicas(title):
            return None
        margin = self._handoff_margin_frames(title)

        def can_serve(record: ClientRecord, server: ProcessId) -> bool:
            limit = self.catalog.prefix_frames(title, server.name)
            return limit is None or record.offset < limit - margin

        return can_serve

    def _cohort_connect(
        self, title: str, request: ConnectRequest, sync: bool
    ) -> None:
        """Admit a flyweight viewer: one columnar row, no session.

        Mirrors the full connect path's deterministic admission over
        the cohort's own assignment map — every replica that sees the
        open-group request records the same owner, the owner adds the
        row."""
        cohort = self._cohort(title)
        client = request.client
        chosen = self._assign_cohort_client(title, client, cohort)
        if chosen != self.process or client in cohort.rows:
            return  # not ours, or a duplicate connect retry
        if self.admission_policy is not None:
            decision = self._admission_check(title, request)
            if not decision.admitted:
                return  # the row's connect retry is the queue
            # Degrades admit as-is: flyweight rows share the cohort's
            # closed-form playhead, so there is no per-row quality to
            # grant (the decision still emitted its telemetry).
        cohort.add_row(
            client,
            max(1, request.resume_offset),
            request.resume_epoch,
            takeover=False,
        )
        # No prompt state share (unlike the full path): every replica
        # saw the same open-group connect and ran the same admission
        # rule, so there is nothing to propagate — and syncing per row
        # would make a connect flood O(N^2) in shared bytes.  The
        # periodic CohortSync covers takeover freshness.

    def _assign_cohort_client(
        self, title: str, client: ProcessId, cohort: CohortSession
    ) -> ProcessId:
        """:meth:`_assign_new_client`, keyed on the cohort's assignment
        map (flyweight rows have no per-client records to consult).

        Flyweight rows live for the whole movie, so prefix-only
        replicas never take them: their closed-form playheads would
        silently play past the stored prefix."""
        view = self._movie_views[title]
        members = [
            member
            for member in view.members
            if self.catalog.prefix_of(title, member.name) is None
        ] or list(view.members)
        assignment = cohort.assignment
        existing = assignment.get(client)
        if existing is not None and existing in view.member_set:
            if cohort.lists_row(
                existing,
                cohort.pool.row_of(client),
                3.0 * self.config.sync_interval_s,
            ):
                return existing
            # A connect retry against a placement that never
            # materialised: post-settle connects arrive in different
            # orders at different replicas, so the least-loaded rule
            # can disagree and leave a row nobody serves.  Mirror of
            # the full path's stale-assignment repair — drop the
            # cached entry and re-admit from converged load state.
            assignment.pop(client, None)
        if (
            self.sim.now < self._assignment_settle_until.get(title, 0.0)
            and view.joined
        ):
            known = sorted(set(assignment) | {client})
            order = join_regime_order(members, view.joined)
            chosen = order[known.index(client) % len(order)]
        else:
            # The OwnerMap's incremental counts make this O(members):
            # admitting a 100k flood must not scan the assignment.
            chosen = min(
                members,
                key=lambda member: (assignment.load_of(member), member),
            )
        assignment[client] = chosen
        return chosen

    # ==================================================================
    # Flyweight promotion / demotion
    # ==================================================================
    def promote_flyweight(self, client: ProcessId) -> ClientRecord:
        """Convert a cohort row into a real per-client session in place.

        The session resumes at the row's arithmetic playhead with the
        row's epoch; the record enters the shared state so peers adopt
        the placement (its ``server`` field is honoured while fresh).
        Returns the record the session was started from."""
        for title, cohort in self._cohorts.items():
            if client in cohort.rows:
                break
        else:
            raise SessionError(f"{client} has no flyweight row on {self.name}")
        record = cohort.remove_row(client)
        cohort.assignment.pop(client, None)
        self.movie_states[title].put_record(record, self.sim.now)
        self._assignments.setdefault(title, {})[client] = self.process
        self._start_session(record)
        self._sync_movie(title)
        return record

    def demote_to_flyweight(self, client: ProcessId) -> ClientRecord:
        """Fold a full session back into a flyweight cohort row.

        The session ends as departed (the tombstone clears the record
        everywhere); the row resumes at the session's final offset."""
        session = self.sessions.get(client)
        if session is None:
            raise SessionError(f"{client} has no session on {self.name}")
        title = session.movie.title
        record = session.record()
        self._end_session(client, departed=True)
        self._assignments.get(title, {}).pop(client, None)
        cohort = self._cohort(title)
        cohort.add_row(client, record.offset, record.epoch, takeover=False)
        self._sync_movie(title)
        return record

    # ==================================================================
    # Movie groups: state sharing and re-distribution
    # ==================================================================
    def _join_movie_group(self, title: str) -> None:
        if title in self._movie_handles:
            return
        self.movie_states[title] = MovieState(title)
        listener = GroupListener(
            on_view=lambda view, t=title: self._on_movie_view(t, view),
            on_message=lambda sender, payload, t=title: self._on_movie_message(
                t, sender, payload
            ),
        )
        self._movie_handles[title] = self.endpoint.join(
            movie_group(title), self.name, listener
        )

    def _on_movie_view(self, title: str, view: View) -> None:
        if not self.running:
            return
        self._movie_views[title] = view
        joiners = set(view.joined)
        if joiners and self.process not in joiners:
            # State transfer to the newcomers: re-send the last periodic
            # snapshot so they can compute the same assignment and
            # resume clients from the last *shared* offset.
            last_sync = self._last_sync.get(title)
            handle = self._movie_handles.get(title)
            if last_sync is not None and handle is not None and handle.is_member:
                handle.multicast(last_sync, last_sync.wire_bytes())
                self.state_sync_bytes_sent += last_sync.wire_bytes()
            # Cohort state transfer rides the same mechanism: the last
            # batched share lists every row (pre-redistribution), so a
            # joiner can learn the cohort assignment and take its share.
            last_cohort = self._last_cohort_sync.get(title)
            if last_cohort is not None and handle is not None and handle.is_member:
                handle.multicast(last_cohort, last_cohort.wire_bytes())
                self.state_sync_bytes_sent += last_cohort.wire_bytes()
        self._reevaluate(title)
        cohort = self._cohorts.get(title)
        if cohort is not None:
            cohort.on_view(view)

    def _on_movie_message(
        self, title: str, sender: ProcessId, payload: Any
    ) -> None:
        if not self.running or sender == self.process:
            return
        if isinstance(payload, StateSync):
            state = self.movie_states[title]
            state.merge_sync(payload, self.sim.now)
            self._apply_directed_handoffs(title, payload)
            self._reevaluate(title)
        elif isinstance(payload, CohortSync):
            if title in self._flyweights:
                self._cohort(title).on_peer_sync(payload)

    def _sync_tick(self) -> None:
        if not self.running:
            return
        for title in list(self._movie_handles):
            self._check_prefix_handoffs(title)
            self._sync_movie(title)
            # Periodic self-check: peers' syncs trigger re-evaluation,
            # but a lone replica must still run the orphan repair.
            self._reevaluate(title)

    def _sync_movie(self, title: str) -> None:
        state = self.movie_states[title]
        own = []
        for client, session in self.sessions.items():
            if session.movie.title != title:
                continue
            record = session.record()
            state.put_record(record, self.sim.now)
            own.append(record)
        # Periodically echo foreign records too (not only our own
        # sessions): a record whose server lost it mid-churn must still
        # reach new replicas, or the client would be orphaned forever.
        # Peers merge by updated_at, so echoes never mask fresher
        # state.  Echoing only every few periods keeps the paper's
        # <1/1000 synchronization-bandwidth budget.
        self._sync_counter[title] = self._sync_counter.get(title, 0) + 1
        if self._sync_counter[title] % 4 == 0:
            records = tuple(state.records.values())
        else:
            records = tuple(own)
        sync = StateSync(
            server=self.process,
            movie=title,
            records=records,
            departed=state.recently_departed(),
        )
        handle = self._movie_handles.get(title)
        if handle is not None and handle.is_member:
            handle.multicast(sync, sync.wire_bytes())
            self.state_sync_bytes_sent += sync.wire_bytes()
            self._last_sync[title] = sync
            cohort = self._cohorts.get(title)
            if cohort is not None:
                share = cohort.sync_payload()
                handle.multicast(share, share.wire_bytes())
                self.state_sync_bytes_sent += share.wire_bytes()
                self._last_cohort_sync[title] = share

    def _check_prefix_handoffs(self, title: str) -> None:
        """Hand sessions approaching our stored prefix boundary to a
        full replica, mid-stream and glitch-free.

        For each such session we rewrite its record's ``server`` field
        to the chosen successor (the least-loaded eligible replica),
        multicast the rewritten records immediately, and end the local
        session.  Receivers treat a fresh record whose ``server`` is
        not its sender as a *directed handoff*
        (:meth:`_apply_directed_handoffs`): the named successor adopts
        without waiting for the record to go stale.  The margin (two
        sync periods of playback) is the headroom that keeps the viewer
        streaming through the switch."""
        limit = self.catalog.prefix_frames(title, self.name)
        if limit is None:
            return
        view = self._movie_views.get(title)
        if view is None:
            return
        margin = self._handoff_margin_frames(title)
        state = self.movie_states[title]
        assignment = self._assignments.setdefault(title, {})
        handed_off: List[ClientRecord] = []
        for client in [
            c for c, s in self.sessions.items() if s.movie.title == title
        ]:
            session = self.sessions[client]
            if session.position < limit - margin:
                continue
            eligible = []
            for member in view.members:
                if member == self.process:
                    continue
                peer_limit = self.catalog.prefix_frames(title, member.name)
                if peer_limit is None or session.position < peer_limit - margin:
                    eligible.append(member)
            if not eligible:
                # No live replica can carry the session further than we
                # can: keep streaming past the stored prefix rather
                # than strand the viewer (see docs/PLACEMENT.md).
                continue
            load = {member: 0 for member in view.members}
            for server in assignment.values():
                if server in load:
                    load[server] += 1
            successor = min(
                eligible, key=lambda member: (load[member], member)
            )
            record = replace(
                session.record(), server=successor, updated_at=self.sim.now
            )
            tel = self.sim.telemetry
            if tel.active:
                cause = tel.cause_for(f"client:{client}")
                if cause is None:
                    cause = tel.new_cause(f"prefix.{self.name}")
                tel.attribute(f"client:{client}", cause)
                tel.span(
                    "placement.handoff", key=str(client),
                    from_server=self.name, to_server=successor.name,
                    movie=title, offset=record.offset, cause=cause,
                )
                tel.emit(
                    "placement.prefix.handoff", server=self.name,
                    to_server=successor.name, client=str(client),
                    movie=title, offset=record.offset, cause=cause,
                )
            self._end_session(client, departed=False)
            state.put_record(record, self.sim.now)
            assignment[client] = successor
            handed_off.append(record)
        if handed_off:
            sync = StateSync(
                server=self.process,
                movie=title,
                records=tuple(handed_off),
                departed=state.recently_departed(),
            )
            handle = self._movie_handles.get(title)
            if handle is not None and handle.is_member:
                handle.multicast(sync, sync.wire_bytes())
                self.state_sync_bytes_sent += sync.wire_bytes()

    def _apply_directed_handoffs(self, title: str, sync: StateSync) -> None:
        """Honour handoffs addressed to other servers by their sender.

        A fresh record multicast by one server but naming *another* in
        its ``server`` field is an explicit transfer (a prefix boundary
        handoff): the sender is disclaiming the client and nominating a
        successor.  Updating the cached assignment here — but only
        where it still points at the disclaiming sender — makes every
        replica converge on the successor in the same sync round,
        instead of waiting for the record to go stale and the orphan
        repair to fire.  Third-party echoes are unaffected: an echoed
        record names the server actually serving, which is what the
        assignment already says."""
        assignment = self._assignments.get(title)
        if not assignment:
            return
        view = self._movie_views.get(title)
        if view is None:
            return
        fresh_age = 3.0 * self.config.sync_interval_s
        for record in sync.records:
            if record.server == sync.server:
                continue
            if record.server not in view.member_set:
                continue
            if self.sim.now - record.updated_at > fresh_age:
                continue
            if assignment.get(record.client) == sync.server:
                assignment[record.client] = record.server

    def _reevaluate(self, title: str) -> None:
        """Refresh the deterministic assignment; adjust sessions to match.

        The assignment is recomputed from scratch at each new view
        (with the commit-supplied joined set choosing between orphan
        takeover and even re-distribution) and cached for the view's
        lifetime; clients that appear mid-view extend it incrementally.
        """
        view = self._movie_views.get(title)
        if view is None:
            return
        state = self.movie_states[title]
        for client, session in self.sessions.items():
            if session.movie.title == title:
                state.put_record(session.record(), self.sim.now)

        new_view = self._assignment_view.get(title) != view.view_id
        settling = self.sim.now < self._assignment_settle_until.get(title, 0.0)
        if new_view or settling:
            # Full deterministic recompute.  During the settle window a
            # joiner that receives the state transfer re-derives exactly
            # the assignment the existing members computed.
            assignment = rebalance(
                list(state.records.values()),
                list(view.members),
                view.joined,
                can_serve=self._can_serve_rule(title),
            )
            self._assignments[title] = assignment
            if new_view:
                self._assignment_view[title] = view.view_id
                self._assignment_settle_until[title] = (
                    self.sim.now + 2.0 * self.config.sync_interval_s
                )
        else:
            assignment = self._assignments[title]
            for client in [c for c in assignment if c not in state.records]:
                del assignment[client]
            fresh_age = 3.0 * self.config.sync_interval_s
            for client in sorted(set(state.records) - set(assignment)):
                record = state.records[client]
                if (
                    record.server in view.member_set
                    and self.sim.now - record.updated_at <= fresh_age
                ):
                    # A record we never saw the connect for, refreshed
                    # by a live server: it IS being served (e.g. a
                    # flyweight row promoted in place).  Honour that
                    # placement instead of recomputing least-loaded —
                    # disagreeing here would bounce the session.
                    assignment[client] = record.server
                else:
                    self._assign_new_client(title, client, offset=record.offset)

        # Orphan repair: a served client's record is refreshed every
        # sync period by its server; a record that has gone stale means
        # nobody is serving the client (e.g. both old and new owner
        # dropped it during back-to-back membership churn).  Re-admit
        # stale clients through the deterministic least-loaded rule.
        orphan_age = 3.0 * self.config.sync_interval_s
        for client, record in state.records.items():
            if client in self.sessions:
                continue
            if self.sim.now - record.updated_at <= orphan_age:
                continue
            assignment.pop(client, None)
            self._assign_new_client(title, client, offset=record.offset)

        for client, server in assignment.items():
            if server == self.process and client not in self.sessions:
                record = state.record_of(client)
                if record is not None:
                    self._take_over(record)
            elif server != self.process and client in self.sessions:
                if self.sessions[client].movie.title == title:
                    tel = self.sim.telemetry
                    if tel.active and tel.open_span(
                        "rebalance", key=str(client)
                    ) is None:
                        # Ambient first: a rebalance is caused by the
                        # view change in flight, not by whatever last
                        # happened to this client.
                        cause = tel.cause or tel.cause_for(f"client:{client}")
                        if cause is None:
                            cause = tel.new_cause(f"rebalance.{self.name}")
                        tel.attribute(f"client:{client}", cause)
                        tel.span(
                            "rebalance", key=str(client),
                            from_server=self.name, cause=cause,
                        )
                    self._end_session(client, departed=False)

    # ==================================================================
    # Sessions
    # ==================================================================
    def _start_session(self, record: ClientRecord, takeover: bool = False) -> None:
        movie = self.catalog.movie(record.movie)
        session = ClientSession(
            server=self,
            movie=movie,
            client=record.client,
            session_name=record.session,
            video_endpoint=record.video_endpoint,
            start_offset=record.offset,
            rate_fps=record.rate_fps,
            quality_fps=record.quality_fps,
            paused=record.paused,
            epoch=record.epoch,
        )
        self.sessions[record.client] = session
        if not self.config.session_mux:
            listener = GroupListener(
                on_view=lambda view, c=record.client: self._on_session_view(
                    c, view
                ),
                on_message=lambda sender, payload, c=record.client: (
                    self._on_session_message(c, sender, payload)
                ),
            )
            self._session_handles[record.client] = self.endpoint.join(
                record.session, self.name, listener
            )
        tel = self.sim.telemetry
        if tel.active:
            # Prefer the cause recorded on the handoff span this start is
            # about to close (the crash/shutdown/rebalance that orphaned
            # the client); fall back to the client's attributed cause or
            # the ambient one (a view-install chain reaching here
            # synchronously).
            # Several reassignment spans can be open for one client (a
            # stale rebalance prediction plus a fresh prefix handoff):
            # the newest one is the operation this start resolves.
            kind, span = "takeover", None
            for candidate in ("takeover", "rebalance", "placement.handoff"):
                open_span = tel.open_span(candidate, key=str(record.client))
                if open_span is not None and (
                    span is None or open_span.start > span.start
                ):
                    kind, span = candidate, open_span
            cause = span.attrs.get("cause") if span is not None else None
            if cause is None:
                cause = tel.cause_for(f"client:{record.client}")
            start_fields = dict(
                server=self.name,
                client=str(record.client),
                movie=record.movie,
                offset=record.offset,
                rate_fps=record.rate_fps,
                takeover=takeover,
            )
            if cause is not None:
                tel.attribute(f"client:{record.client}", cause)
                start_fields["cause"] = cause
            tel.emit("server.session.start", **start_fields)
            if takeover and span is not None:
                # Close whichever handoff span the previous owner (or its
                # crash/shutdown path) opened for this client; the latency
                # histogram is the paper's "take-over time" distribution.
                duration = span.end(to_server=self.name)
                if duration is not None:
                    tel.metrics.histogram(f"{kind}.latency_s").observe(duration)
        self._notify("on_session_start", self, record, takeover)

    def _take_over(self, record: ClientRecord) -> None:
        """Resume a client "from the offset and transmission rate that
        were last heard from the previous server"."""
        self._start_session(record, takeover=True)

    def _end_session(self, client: ProcessId, departed: bool) -> None:
        session = self.sessions.pop(client, None)
        if session is not None:
            session.stop()
            if departed:
                state = self.movie_states.get(session.movie.title)
                if state is not None:
                    state.mark_departed(client, self.sim.now)
            tel = self.sim.telemetry
            if tel.active:
                end_fields = dict(
                    server=self.name, client=str(client), departed=departed,
                )
                cause = tel.cause_for(f"client:{client}")
                if cause is not None:
                    end_fields["cause"] = cause
                tel.emit("server.session.end", **end_fields)
            self._notify("on_session_end", self, client, departed)
        handle = self._session_handles.pop(client, None)
        if handle is not None:
            handle.leave()

    def _on_session_view(self, client: ProcessId, view: View) -> None:
        if not self.running:
            return
        session = self.sessions.get(client)
        if session is None:
            return
        if client not in view.member_set:
            # Only a present -> absent transition means the client is
            # gone; a view without the client *before we ever saw it*
            # is just our own join still converging with the client's
            # side of the session group.  And even then, the transition
            # only counts when the failure detector agrees (or a
            # graceful leave was recorded): a partition-heal flush can
            # race and commit a view excluding a live client.  Tearing
            # the session down on such a view strands the client — stay
            # in the group instead, keep streaming (frames travel over
            # UDP, not the session group), and let the presence union
            # pull the diverged views back together.
            if session.saw_client_in_view:
                departed = self.endpoint.is_tombstoned(
                    session.session_name, client
                ) or not self.endpoint.heard_within(
                    client.node, self.endpoint.fd.timeout
                )
                if departed:
                    self._end_session(client, departed=True)
            return
        session.saw_client_in_view = True
        other_servers = sorted(
            member
            for member in view.members
            if member != client and member != self.process
        )
        if other_servers and min([self.process] + other_servers) != self.process:
            # Two replicas transiently serve the same client (connect
            # race); the smallest process id keeps it.
            self._end_session(client, departed=False)

    def _on_session_message(
        self, client: ProcessId, sender: ProcessId, payload: Any
    ) -> None:
        if not self.running or sender != client:
            return
        session = self.sessions.get(client)
        if session is None:
            return
        if isinstance(payload, FlowControlMsg):
            session.on_flow_message(payload)
        elif isinstance(payload, VcrCommand):
            self._on_vcr(session, payload)

    def _on_p2p(self, sender: ProcessId, payload: Any) -> None:
        """Session-mux control path: flow / VCR unicasts routed by their
        sender, replacing the per-client session group."""
        if isinstance(payload, (FlowControlMsg, VcrCommand)):
            self._on_session_message(sender, sender, payload)

    def _on_vcr(self, session: ClientSession, command: VcrCommand) -> None:
        if command.op == VcrOp.PAUSE:
            session.pause()
        elif command.op == VcrOp.RESUME:
            session.resume()
        elif command.op == VcrOp.SEEK:
            if command.position_s is None:
                raise ServiceError("SEEK command without a position")
            session.seek(command.position_s, command.epoch)
        elif command.op == VcrOp.QUALITY:
            session.set_quality(command.quality_fps)
        elif command.op == VcrOp.SPEED:
            if command.speed is None:
                raise ServiceError("SPEED command without a factor")
            session.set_speed(command.speed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VoDServer {self.name} node={self.node_id} "
            f"clients={len(self.sessions)} movies={sorted(self.movie_states)}>"
        )
