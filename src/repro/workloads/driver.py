"""Drive a generated population against a deployment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.client.player import VoDClient
from repro.errors import ServiceError
from repro.service.deployment import Deployment
from repro.workloads.popularity import ZipfCatalogSampler
from repro.workloads.viewer import ViewerProfile


@dataclass
class PopulationStats:
    """Population-level quality-of-experience summary."""

    n_viewers: int = 0
    n_abandoned: int = 0
    total_displayed: int = 0
    total_skipped: int = 0
    total_stall_s: float = 0.0
    worst_stall_s: float = 0.0
    viewers_with_visible_stall: int = 0
    requests_per_title: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_stall_s(self) -> float:
        return self.total_stall_s / max(1, self.n_viewers)

    @property
    def skip_fraction(self) -> float:
        shown = self.total_displayed + self.total_skipped
        return self.total_skipped / max(1, shown)


class WorkloadDriver:
    """Attach arriving viewers (with behaviours) to a deployment.

    Hosts are taken round-robin from ``client_hosts``; at most one
    active client per host at a time (a departed viewer frees its
    host for a later arrival).
    """

    def __init__(
        self,
        deployment: Deployment,
        client_hosts: Sequence[int],
        sampler: ZipfCatalogSampler,
        profile: Optional[ViewerProfile] = None,
        workload_seed: int = 0,
    ) -> None:
        if not client_hosts:
            raise ServiceError("need at least one client host")
        self.deployment = deployment
        self.sim = deployment.sim
        self.sampler = sampler
        self.profile = profile or ViewerProfile()
        self.rng = deployment.sim.rng(f"workload.{workload_seed}")
        self._free_hosts: List[int] = list(client_hosts)
        self.clients: List[VoDClient] = []
        self.requests_per_title: Dict[str, int] = {}
        self.skipped_arrivals = 0
        self._counter = 0

    # ------------------------------------------------------------------
    # Population construction
    # ------------------------------------------------------------------
    def schedule_arrivals(self, arrival_times: Sequence[float]) -> None:
        for at in arrival_times:
            self.sim.call_at(at, self._arrive)

    def _arrive(self) -> None:
        if not self._free_hosts:
            self.skipped_arrivals += 1  # busy signal: no set-top box free
            return
        host = self._free_hosts.pop(0)
        self._counter += 1
        name = f"viewer{self._counter}"
        title = self.sampler.sample(self.rng)
        self.requests_per_title[title] = (
            self.requests_per_title.get(title, 0) + 1
        )
        client = self.deployment.attach_client(host, name)
        client.request_movie(title)
        self.clients.append(client)
        self._schedule_script(client, host, title)

    def _schedule_script(self, client: VoDClient, host: int, title: str) -> None:
        movie = self.deployment.catalog.movie(title)
        script = self.profile.script(self.rng, movie.duration_s)
        t = self.sim.now
        for delay, op, argument in script:
            t += delay
            self.sim.call_at(t, self._apply, client, host, op, argument)

    def _apply(self, client: VoDClient, host: int, op: str, argument: float) -> None:
        if client.finished or client.video_socket.closed:
            return
        try:
            if op == "pause":
                client.pause()
            elif op == "resume":
                client.resume()
            elif op == "seek":
                client.seek(argument)
            elif op == "stop":
                client.stop()
                client.abandoned = True
                self._release_host(client, host)
        except Exception:
            raise

    def _release_host(self, client: VoDClient, host: int) -> None:
        self._free_hosts.append(host)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> PopulationStats:
        stats = PopulationStats(requests_per_title=dict(self.requests_per_title))
        for client in self.clients:
            client.decoder.end_stall(self.sim.now)
            stats.n_viewers += 1
            if getattr(client, "abandoned", False):
                stats.n_abandoned += 1
                continue
            stats.total_displayed += client.displayed_total
            stats.total_skipped += client.skipped_total
            stall = client.decoder.stats.stall_time_s
            stats.total_stall_s += stall
            stats.worst_stall_s = max(stats.worst_stall_s, stall)
            if stall > 1.0:
                stats.viewers_with_visible_stall += 1
        return stats
