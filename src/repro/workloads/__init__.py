"""Workload generation: realistic client populations for the service.

The paper motivates the system with hotel / cable-TV / ISP deployments;
this package models those populations so experiments can go beyond the
single-client measurement runs of Section 6:

* :mod:`repro.workloads.arrivals` — Poisson and burst arrival processes;
* :mod:`repro.workloads.popularity` — Zipf movie selection (VoD
  catalogs are famously head-heavy);
* :mod:`repro.workloads.viewer` — per-viewer behaviour scripts (watch
  through, channel-surf with seeks and pauses, abandon early);
* :mod:`repro.workloads.driver` — attaches the generated population to
  a :class:`~repro.service.deployment.Deployment` and collects
  population-level quality-of-experience statistics.
"""

from repro.workloads.arrivals import (
    burst_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
)
from repro.workloads.driver import PopulationStats, WorkloadDriver
from repro.workloads.popularity import ZipfCatalogSampler
from repro.workloads.viewer import (
    CHANNEL_SURFER,
    COUCH_POTATO,
    VCR_STORM,
    ViewerProfile,
)

__all__ = [
    "CHANNEL_SURFER",
    "COUCH_POTATO",
    "PopulationStats",
    "VCR_STORM",
    "ViewerProfile",
    "WorkloadDriver",
    "ZipfCatalogSampler",
    "burst_arrivals",
    "diurnal_arrivals",
    "poisson_arrivals",
]
