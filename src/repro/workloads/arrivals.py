"""Arrival processes for client populations."""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.errors import ServiceError


def poisson_arrivals(
    rng: random.Random,
    rate_per_s: float,
    duration_s: float,
    start_s: float = 0.0,
    limit: int = 10_000,
) -> List[float]:
    """Exponentially spaced arrival times over ``duration_s`` seconds."""
    if rate_per_s <= 0:
        raise ServiceError(f"arrival rate must be positive, got {rate_per_s!r}")
    times: List[float] = []
    t = start_s
    while len(times) < limit:
        t += rng.expovariate(rate_per_s)
        if t >= start_s + duration_s:
            break
        times.append(t)
    return times


def burst_arrivals(
    rng: random.Random,
    n_clients: int,
    at_s: float,
    spread_s: float = 2.0,
) -> List[float]:
    """Everyone shows up at once (prime-time premiere): ``n_clients``
    arrivals uniformly inside ``[at_s, at_s + spread_s]``, sorted."""
    if n_clients < 0:
        raise ServiceError(f"negative client count {n_clients!r}")
    return sorted(at_s + rng.uniform(0.0, spread_s) for _ in range(n_clients))


def diurnal_arrivals(
    rng: random.Random,
    base_rate_per_s: float,
    peak_rate_per_s: float,
    duration_s: float,
    period_s: Optional[float] = None,
    start_s: float = 0.0,
    limit: int = 10_000,
) -> List[float]:
    """Sinusoidal prime-time swell: a non-homogeneous Poisson process.

    The instantaneous rate sweeps from ``base_rate_per_s`` (the trough
    at ``start_s``) up to ``peak_rate_per_s`` half a period later and
    back, via thinning against the peak rate.  ``period_s`` defaults to
    ``duration_s`` so one run covers exactly one trough-peak-trough arc.
    """
    if base_rate_per_s <= 0 or peak_rate_per_s < base_rate_per_s:
        raise ServiceError(
            "need 0 < base rate <= peak rate, got "
            f"{base_rate_per_s!r} / {peak_rate_per_s!r}"
        )
    if period_s is None:
        period_s = duration_s
    times: List[float] = []
    t = start_s
    while len(times) < limit:
        t += rng.expovariate(peak_rate_per_s)
        if t >= start_s + duration_s:
            break
        phase = (t - start_s) / period_s
        rate = base_rate_per_s + (peak_rate_per_s - base_rate_per_s) * 0.5 * (
            1.0 - math.cos(2.0 * math.pi * phase)
        )
        if rng.random() < rate / peak_rate_per_s:
            times.append(t)
    return times
