"""Arrival processes for client populations."""

from __future__ import annotations

import random
from typing import List

from repro.errors import ServiceError


def poisson_arrivals(
    rng: random.Random,
    rate_per_s: float,
    duration_s: float,
    start_s: float = 0.0,
    limit: int = 10_000,
) -> List[float]:
    """Exponentially spaced arrival times over ``duration_s`` seconds."""
    if rate_per_s <= 0:
        raise ServiceError(f"arrival rate must be positive, got {rate_per_s!r}")
    times: List[float] = []
    t = start_s
    while len(times) < limit:
        t += rng.expovariate(rate_per_s)
        if t >= start_s + duration_s:
            break
        times.append(t)
    return times


def burst_arrivals(
    rng: random.Random,
    n_clients: int,
    at_s: float,
    spread_s: float = 2.0,
) -> List[float]:
    """Everyone shows up at once (prime-time premiere): ``n_clients``
    arrivals uniformly inside ``[at_s, at_s + spread_s]``, sorted."""
    if n_clients < 0:
        raise ServiceError(f"negative client count {n_clients!r}")
    return sorted(at_s + rng.uniform(0.0, spread_s) for _ in range(n_clients))
