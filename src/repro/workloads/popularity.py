"""Movie popularity: Zipf-distributed selection.

VoD request popularity is classically head-heavy (a few hits take most
of the requests — the observation behind every VoD caching paper of the
era).  A :class:`ZipfCatalogSampler` draws titles with
``P(rank k) ∝ 1 / k**alpha``.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Dict, List, Sequence

from repro.errors import ServiceError


class ZipfCatalogSampler:
    """Draw movie titles with Zipf(alpha) popularity by catalog order."""

    def __init__(self, titles: Sequence[str], alpha: float = 0.8) -> None:
        if not titles:
            raise ServiceError("cannot sample from an empty catalog")
        if alpha < 0:
            raise ServiceError(f"alpha must be >= 0, got {alpha!r}")
        self.titles = list(titles)
        self.alpha = alpha
        weights = [1.0 / (rank ** alpha) for rank in range(1, len(titles) + 1)]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random) -> str:
        point = rng.uniform(0.0, self._total)
        index = bisect.bisect_left(self._cumulative, point)
        return self.titles[min(index, len(self.titles) - 1)]

    def sample_many(self, rng: random.Random, count: int) -> List[str]:
        return [self.sample(rng) for _ in range(count)]

    def expected_share(self, title: str) -> float:
        """The analytic request share of one title."""
        rank = self.titles.index(title) + 1
        return (1.0 / rank ** self.alpha) / self._total

    def histogram(self, samples: Sequence[str]) -> Dict[str, int]:
        counts: Dict[str, int] = {title: 0 for title in self.titles}
        for title in samples:
            counts[title] += 1
        return counts
