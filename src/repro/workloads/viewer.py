"""Per-viewer behaviour profiles.

A profile is a small distribution over what a viewer does after
connecting: most watch through; some pause (doorbell), some skim with
seeks, some abandon.  Behaviour scripts are generated up front from a
seeded RNG so runs stay deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

#: One scripted action: (delay since previous action, op, argument).
Action = Tuple[float, str, float]


@dataclass(frozen=True)
class ViewerProfile:
    """Probabilities of viewer behaviours (the rest watch through)."""

    pause_prob: float = 0.25
    seek_prob: float = 0.2
    abandon_prob: float = 0.1
    pause_length_s: Tuple[float, float] = (3.0, 15.0)
    actions_spacing_s: Tuple[float, float] = (10.0, 40.0)

    def script(
        self, rng: random.Random, movie_duration_s: float
    ) -> List[Action]:
        """Generate one viewer's action script."""
        actions: List[Action] = []
        # Abandonment preempts everything else.
        if rng.random() < self.abandon_prob:
            watch_for = rng.uniform(5.0, max(6.0, movie_duration_s * 0.4))
            actions.append((watch_for, "stop", 0.0))
            return actions
        t = 0.0
        while t < movie_duration_s * 0.7:
            gap = rng.uniform(*self.actions_spacing_s)
            t += gap
            roll = rng.random()
            if roll < self.pause_prob:
                pause_for = rng.uniform(*self.pause_length_s)
                actions.append((gap, "pause", 0.0))
                actions.append((pause_for, "resume", 0.0))
                t += pause_for
            elif roll < self.pause_prob + self.seek_prob:
                target = rng.uniform(0.0, movie_duration_s * 0.8)
                actions.append((gap, "seek", target))
            else:
                actions.append((gap, "nothing", 0.0))
        return actions


COUCH_POTATO = ViewerProfile(pause_prob=0.1, seek_prob=0.05, abandon_prob=0.02)
CHANNEL_SURFER = ViewerProfile(pause_prob=0.2, seek_prob=0.5, abandon_prob=0.25)

#: Remote-control abuse: rapid-fire pause/seek with barely a breath
#: between actions, and nobody gives up — a stress profile for the
#: VCR-interaction path rather than a realistic audience.
VCR_STORM = ViewerProfile(
    pause_prob=0.35,
    seek_prob=0.55,
    abandon_prob=0.0,
    pause_length_s=(0.5, 3.0),
    actions_spacing_s=(2.0, 8.0),
)
