"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch everything from this package with a single ``except`` clause
while still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event kernel (e.g. scheduling in the past)."""


class NetworkError(ReproError):
    """Network-substrate errors (unknown node, closed socket, bad route)."""


class AddressInUseError(NetworkError):
    """A socket bind collided with an existing binding on the node."""


class SocketClosedError(NetworkError):
    """An operation was attempted on a closed socket."""


class GroupError(ReproError):
    """Group-communication errors (not a member, endpoint down, ...)."""


class NotMemberError(GroupError):
    """A multicast or leave was attempted on a group the caller is not in."""


class MediaError(ReproError):
    """Media-model errors (unknown movie, bad frame index, ...)."""


class UnknownMovieError(MediaError):
    """A movie title was requested that the catalog does not hold."""


class FaultError(ReproError):
    """Fault-injection errors (malformed plan, unresolvable target, ...)."""


class ServiceError(ReproError):
    """VoD service-layer errors (no server for movie, bad session, ...)."""


class NoServerAvailableError(ServiceError):
    """No live server holds a replica of the requested movie."""


class SessionError(ServiceError):
    """A client/session protocol violation (e.g. request before connect)."""
