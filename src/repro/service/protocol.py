"""Application-level messages of the VoD service.

Control messages travel through the GCS (session-group multicast,
open-group sends to the server group, reliable point-to-point); video
frames travel as raw UDP datagrams carrying :class:`FramePacket`.
Wire-size estimates follow the paper's claim that per-client shared
state is "a few dozen bytes".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.gcs.view import ProcessId
from repro.media.frames import Frame
from repro.net.address import Endpoint
from repro.net.packet import DATACLASS_SLOTS

#: Name of the group containing every VoD server.
SERVER_GROUP = "vod.servers"


def movie_group(title: str) -> str:
    """Group of the servers holding a replica of ``title``."""
    return f"vod.movie.{title}"


def session_group(client_name: str) -> str:
    """Group pairing one client with its current server."""
    return f"vod.session.{client_name}"


# ----------------------------------------------------------------------
# Connection establishment
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConnectRequest:
    """Client -> server group (open-group send): start a movie.

    ``resume_offset``/``resume_epoch`` let a client that lost the whole
    service (e.g. a long partition) re-join where it left off instead of
    replaying the movie from the top."""

    client: ProcessId
    movie: str
    video_endpoint: Endpoint
    session: str
    quality_fps: Optional[int] = None
    resume_offset: int = 1
    resume_epoch: int = 0

    def wire_bytes(self) -> int:
        return 72


@dataclass(frozen=True)
class ListMoviesRequest:
    """Client -> server group: what movies are offered?"""

    client: ProcessId

    def wire_bytes(self) -> int:
        return 16


@dataclass(frozen=True)
class ListMoviesReply:
    """Server -> client (reliable p2p): the offered movie titles."""

    titles: Tuple[str, ...]

    def wire_bytes(self) -> int:
        return 8 + sum(len(title) + 2 for title in self.titles)


@dataclass(frozen=True)
class QualityNotice:
    """Server -> client (reliable p2p): admission granted a different
    stream quality than requested (policy degrade under overload).

    The client adopts ``quality_fps`` so its re-ordering logic treats
    the server-skipped frames as intentional gaps, and its reconnects
    carry the granted quality forward."""

    movie: str
    quality_fps: int
    epoch: int = 0

    def wire_bytes(self) -> int:
        return 16 + len(self.movie)


# ----------------------------------------------------------------------
# Flow control (client -> server, session-group multicast)
# ----------------------------------------------------------------------
class FlowKind(enum.Enum):
    INCREASE = "increase"  # +1 frame/s
    DECREASE = "decrease"  # -1 frame/s
    EMERGENCY = "emergency"  # refill quickly


class EmergencyLevel(enum.IntEnum):
    """Two-tier emergencies of Section 4.1."""

    MILD = 1  # occupancy below 30% (base quantity 6)
    SEVERE = 2  # occupancy below 15% (base quantity 12)


@dataclass(frozen=True)
class FlowControlMsg:
    kind: FlowKind
    level: Optional[EmergencyLevel] = None
    occupancy: int = 0  # diagnostic only; the server does not use it

    def wire_bytes(self) -> int:
        return 16


# ----------------------------------------------------------------------
# VCR control (client -> server, session-group multicast)
# ----------------------------------------------------------------------
class VcrOp(enum.Enum):
    PAUSE = "pause"
    RESUME = "resume"
    SEEK = "seek"
    QUALITY = "quality"
    SPEED = "speed"


@dataclass(frozen=True)
class VcrCommand:
    op: VcrOp
    position_s: Optional[float] = None  # for SEEK
    quality_fps: Optional[int] = None  # for QUALITY
    speed: Optional[float] = None  # for SPEED (e.g. 2.0 = fast forward)
    epoch: int = 0  # playback epoch; bumped by each SEEK

    def wire_bytes(self) -> int:
        return 24


# ----------------------------------------------------------------------
# Server state sharing (movie-group multicast, every sync period)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClientRecord:
    """Everything a replica needs to take over a client mid-movie."""

    client: ProcessId
    movie: str
    session: str
    video_endpoint: Endpoint
    offset: int  # next frame index to transmit
    rate_fps: int  # current base transmission rate
    quality_fps: Optional[int]
    paused: bool
    epoch: int
    server: ProcessId  # who currently serves this client
    updated_at: float

    def wire_bytes(self) -> int:
        return 40  # "a few dozens of bytes" per client (paper §5.2)


@dataclass(frozen=True)
class StateSync:
    """A server's periodic snapshot of the clients it serves."""

    server: ProcessId
    movie: str
    records: Tuple[ClientRecord, ...]
    departed: Tuple[ProcessId, ...] = ()

    def wire_bytes(self) -> int:
        return (
            24
            + sum(record.wire_bytes() for record in self.records)
            + 8 * len(self.departed)
        )


@dataclass(frozen=True)
class CohortSync:
    """A server's flyweight viewers for one movie, as *one* batched
    state-share record.

    Steady-state viewers need none of :class:`ClientRecord`'s identity
    fields repeated twice a second: their endpoints and session names
    are immutable after admission (the flyweight pool holds them), so
    the periodic share shrinks to row index + playhead offset — a few
    bytes per viewer in one message per movie group, instead of one
    40-byte record per client.  ``rows`` are pool row indices, sorted;
    ``offsets[i]`` is the next frame index of ``rows[i]`` at ``at``.
    """

    server: ProcessId
    movie: str
    rows: Tuple[int, ...]
    offsets: Tuple[int, ...]
    rate_fps: int
    at: float

    def wire_bytes(self) -> int:
        # ~3B varint row index + ~3B varint offset per viewer.
        return 32 + 6 * len(self.rows)


# ----------------------------------------------------------------------
# Video plane (server -> client, raw UDP)
# ----------------------------------------------------------------------
@dataclass(frozen=True, **DATACLASS_SLOTS)
class FramePacket:
    """One video frame in flight (a single frame per message)."""

    frame: Frame
    epoch: int
    server: ProcessId
    sent_at: float

    def wire_bytes(self) -> int:
        return self.frame.size_bytes + 16


@dataclass(frozen=True)
class FrameBurst:
    """Several frames coalesced into one datagram (wire fallback).

    The batched transmission mode normally replays frames as individual
    :class:`FramePacket` datagrams with exact per-frame timing; on paths
    where that replay is not possible the whole window can instead ride
    one datagram.  Each packet keeps its own ``sent_at``, so the client
    processes the members exactly as if they had arrived one by one —
    flow-control watermark accounting is per frame either way.
    """

    packets: Tuple[FramePacket, ...]

    def wire_bytes(self) -> int:
        return 16 + sum(packet.wire_bytes() for packet in self.packets)


@dataclass(frozen=True)
class EndOfStream:
    """Server -> client: the movie finished."""

    movie: str
    epoch: int

    def wire_bytes(self) -> int:
        return 16
