"""Service control: admission gating and scheduled scenario events.

:class:`AdmissionQueue` defers client admission while a movie group's
membership is still settling; :class:`ScenarioController` turns
experiment descriptions ("approximately 38 seconds after the movie
began, the server transmitting this movie was terminated...") into
simulator events and keeps a log for annotating the resulting series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.deployment import Deployment
    from repro.service.protocol import ConnectRequest


class AdmissionQueue:
    """Defers connect admissions while a movie group's view settles.

    A connect that lands while the group's first view is still forming
    (or while a later view is inside its settle window with joiners)
    used to be admitted immediately — and the join-regime full recompute
    that runs on *every* record arrival during the settle window then
    round-robins the grown record set differently each time, bouncing
    already-admitted clients between replicas (~90 000 session
    ping-pongs at a 1 000-client connect flood).  Queuing the flood
    until the view settles keeps the record set frozen while the
    recompute is live, so the rebalance is computed once over stable
    inputs.  Requests are deduplicated per client (the latest retry
    wins) and drained in *sorted client order*: network jitter gives
    every replica a different arrival order, and the least-loaded
    placement rule is order-sensitive, so draining by arrival order
    would make replicas disagree about who serves whom.  Sorted order
    makes every replica run the identical admission sequence.
    """

    def __init__(self, server: Any) -> None:
        self._server = server
        self._sim = server.sim
        # title -> {client: request}, insertion-ordered (drain order).
        self._pending: Dict[str, Dict[Any, "ConnectRequest"]] = {}
        self._drain_handles: Dict[str, Any] = {}
        self.deferred_total = 0

    # ------------------------------------------------------------------
    # Enqueue
    # ------------------------------------------------------------------
    def defer(self, title: str, request: "ConnectRequest") -> bool:
        """Queue ``request`` if the movie group is still settling.

        Returns True when the request was absorbed (the caller must not
        admit it now); False when admission can proceed immediately.
        """
        if not self._settling(title):
            return False
        queue = self._pending.setdefault(title, {})
        # A retry replaces the original but keeps its queue position.
        queue[request.client] = request
        self.deferred_total += 1
        self._arm_drain(title)
        return True

    def _settling(self, title: str) -> bool:
        server = self._server
        view = server._movie_views.get(title)
        if view is None:
            return True  # no view committed yet: the group is forming
        settle_until = server._assignment_settle_until.get(title, 0.0)
        return bool(view.joined) and self._sim.now < settle_until

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def _arm_drain(self, title: str) -> None:
        if title in self._drain_handles:
            return
        settle_until = self._server._assignment_settle_until.get(title)
        if settle_until is None or settle_until <= self._sim.now:
            # No settle window yet (still waiting for the first view):
            # poll at the server's sync cadence until one exists.
            settle_until = (
                self._sim.now + self._server.config.sync_interval_s
            )
        self._drain_handles[title] = self._sim.call_at(
            settle_until, self._drain, title
        )

    def _drain(self, title: str) -> None:
        self._drain_handles.pop(title, None)
        if not self._server.running:
            self._pending.pop(title, None)
            return
        if self._settling(title):
            self._arm_drain(title)  # a newer view re-opened the window
            return
        queue = self._pending.pop(title, None)
        if not queue:
            return
        tel = self._sim.telemetry
        if tel.active:
            tel.emit(
                "server.admission.drain",
                server=self._server.name,
                movie=title,
                queued=len(queue),
            )
        # Admit in sorted client order (identical at every replica)
        # without the per-admission sync storm; one state share at the
        # end propagates the whole batch.
        for client in sorted(queue):
            self._server._on_connect(queue[client], sync=False)
        self._server._sync_movie(title)

    def pending(self, title: str) -> int:
        queue = self._pending.get(title)
        return len(queue) if queue else 0

    def close(self) -> None:
        for handle in self._drain_handles.values():
            handle.cancel()
        self._drain_handles.clear()
        self._pending.clear()


@dataclass(frozen=True)
class ScenarioEvent:
    """One scheduled scenario event, recorded when it fires."""

    time: float
    kind: str
    detail: str


class ScenarioController:
    """Schedules crashes, detaches, server bring-ups and partitions."""

    def __init__(self, deployment: "Deployment") -> None:
        self.deployment = deployment
        self.sim = deployment.sim
        self.events: List[ScenarioEvent] = []

    # ------------------------------------------------------------------
    # Server lifecycle
    # ------------------------------------------------------------------
    def crash_server_at(self, time: float, name: str) -> None:
        """Fail-stop the named server (and its node) at ``time``."""

        def fire() -> None:
            self.deployment.server(name).crash()
            self._log("crash", name)

        self.sim.call_at(time, fire)

    def detach_server_at(self, time: float, name: str) -> None:
        """Gracefully shut the named server down at ``time``."""

        def fire() -> None:
            self.deployment.server(name).shutdown()
            self._log("detach", name)

        self.sim.call_at(time, fire)

    def start_server_at(
        self,
        time: float,
        host_index: int,
        name: Optional[str] = None,
        movies: Optional[Iterable[str]] = None,
    ) -> None:
        """Bring a new server up on the fly at ``time``."""

        def fire() -> None:
            server = self.deployment.add_server(host_index, name, movies)
            self._log("server-up", server.name)

        self.sim.call_at(time, fire)

    # ------------------------------------------------------------------
    # Network faults
    # ------------------------------------------------------------------
    def partition_at(
        self, time: float, side_a: Iterable[int], side_b: Iterable[int]
    ) -> None:
        side_a, side_b = list(side_a), list(side_b)

        def fire() -> None:
            self.deployment.network.partition(side_a, side_b)
            self._log("partition", f"{side_a} | {side_b}")

        self.sim.call_at(time, fire)

    def heal_at(self, time: float) -> None:
        def fire() -> None:
            self.deployment.network.heal()
            self._log("heal", "all links up")

        self.sim.call_at(time, fire)

    def link_state_at(
        self, time: float, node_a: int, node_b: int, up: bool
    ) -> None:
        def fire() -> None:
            self.deployment.network.set_link_state(node_a, node_b, up)
            self._log("link", f"({node_a},{node_b}) {'up' if up else 'down'}")

        self.sim.call_at(time, fire)

    # ------------------------------------------------------------------
    # Event log
    # ------------------------------------------------------------------
    def _log(self, kind: str, detail: str) -> None:
        self.events.append(ScenarioEvent(self.sim.now, kind, detail))

    def events_of(self, kind: str) -> List[ScenarioEvent]:
        return [event for event in self.events if event.kind == kind]
