"""Scenario controller: scheduled fault and reconfiguration events.

Experiments describe *when* things happen ("approximately 38 seconds
after the movie began, the server transmitting this movie was
terminated..."); the controller turns those into simulator events and
keeps a log for annotating the resulting series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.deployment import Deployment


@dataclass(frozen=True)
class ScenarioEvent:
    """One scheduled scenario event, recorded when it fires."""

    time: float
    kind: str
    detail: str


class ScenarioController:
    """Schedules crashes, detaches, server bring-ups and partitions."""

    def __init__(self, deployment: "Deployment") -> None:
        self.deployment = deployment
        self.sim = deployment.sim
        self.events: List[ScenarioEvent] = []

    # ------------------------------------------------------------------
    # Server lifecycle
    # ------------------------------------------------------------------
    def crash_server_at(self, time: float, name: str) -> None:
        """Fail-stop the named server (and its node) at ``time``."""

        def fire() -> None:
            self.deployment.server(name).crash()
            self._log("crash", name)

        self.sim.call_at(time, fire)

    def detach_server_at(self, time: float, name: str) -> None:
        """Gracefully shut the named server down at ``time``."""

        def fire() -> None:
            self.deployment.server(name).shutdown()
            self._log("detach", name)

        self.sim.call_at(time, fire)

    def start_server_at(
        self,
        time: float,
        host_index: int,
        name: Optional[str] = None,
        movies: Optional[Iterable[str]] = None,
    ) -> None:
        """Bring a new server up on the fly at ``time``."""

        def fire() -> None:
            server = self.deployment.add_server(host_index, name, movies)
            self._log("server-up", server.name)

        self.sim.call_at(time, fire)

    # ------------------------------------------------------------------
    # Network faults
    # ------------------------------------------------------------------
    def partition_at(
        self, time: float, side_a: Iterable[int], side_b: Iterable[int]
    ) -> None:
        side_a, side_b = list(side_a), list(side_b)

        def fire() -> None:
            self.deployment.network.partition(side_a, side_b)
            self._log("partition", f"{side_a} | {side_b}")

        self.sim.call_at(time, fire)

    def heal_at(self, time: float) -> None:
        def fire() -> None:
            self.deployment.network.heal()
            self._log("heal", "all links up")

        self.sim.call_at(time, fire)

    def link_state_at(
        self, time: float, node_a: int, node_b: int, up: bool
    ) -> None:
        def fire() -> None:
            self.deployment.network.set_link_state(node_a, node_b, up)
            self._log("link", f"({node_a},{node_b}) {'up' if up else 'down'}")

        self.sim.call_at(time, fire)

    # ------------------------------------------------------------------
    # Event log
    # ------------------------------------------------------------------
    def _log(self, kind: str, detail: str) -> None:
        self.events.append(ScenarioEvent(self.sim.now, kind, detail))

    def events_of(self, kind: str) -> List[ScenarioEvent]:
        return [event for event in self.events if event.kind == kind]
