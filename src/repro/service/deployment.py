"""Deployment builder: servers, clients and the catalog on a topology."""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.client.player import ClientConfig, VoDClient
from repro.errors import ServiceError
from repro.gcs.domain import GcsDomain
from repro.media.catalog import MovieCatalog
from repro.net.address import VIDEO_PORT
from repro.net.topologies import Topology
from repro.placement.plan import PlacementPlan
from repro.placement.strategies import StaticPlacement
from repro.server.server import ServerConfig, VoDServer
from repro.service.controller import ScenarioController


@dataclass
class ClientSpec:
    """One admission surface for both viewer flavours.

    ``mode="full"`` attaches a real :class:`VoDClient` on
    ``topology.hosts[host]``; ``mode="flyweight"`` creates (or extends)
    the columnar viewer pool for ``movie`` — see
    :meth:`Deployment.attach`.  The legacy ``attach_client`` /
    ``attach_flyweight`` methods are thin wrappers building one of
    these.
    """

    mode: str = "full"
    # full mode
    host: Optional[int] = None
    name: Optional[str] = None
    config: Optional[Any] = None  # ClientConfig (full) / FlyweightConfig
    endpoint: Optional[Any] = None
    video_port: Optional[int] = VIDEO_PORT
    # flyweight mode
    movie: Optional[str] = None
    client_config: Optional[ClientConfig] = None


class Deployment:
    """A running VoD service on a simulated network.

    Parameters
    ----------
    topology:
        The network to deploy on (see :mod:`repro.net.topologies`).
    catalog:
        The movies.  When ``replicate_all`` is true every server gets a
        replica of every movie; pass a ``placement`` plan (or build via
        :meth:`from_placement`) to derive the replica map from a
        strategy instead.
    server_nodes:
        Host indices (into ``topology.hosts``) that run servers at start.
    placement:
        A :class:`~repro.placement.PlacementPlan` consulted by
        :meth:`add_server` for each server's stored titles (full or
        prefix).  Servers unknown to the plan fall back to
        ``replicate_all``.
    """

    def __init__(
        self,
        topology: Topology,
        catalog: MovieCatalog,
        server_nodes: Sequence[int] = (),
        server_config: Optional[ServerConfig] = None,
        client_config: Optional[ClientConfig] = None,
        replicate_all: bool = True,
        fd_timeout: Optional[float] = None,
        enable_qos: bool = False,
        placement: Optional[PlacementPlan] = None,
        admission_policy: Optional[Any] = None,
    ) -> None:
        self.topology = topology
        self.network = topology.network
        self.sim = topology.sim
        self.catalog = catalog
        self.server_config = server_config or ServerConfig()
        self.client_config = client_config or ClientConfig()
        self.replicate_all = replicate_all
        self.placement = placement
        # One pool-level admission policy shared by every server,
        # present and future (see repro.server.admission); None keeps
        # the historical admit-all behaviour byte-for-byte.
        self.admission_policy = admission_policy
        self.domain = GcsDomain(self.sim, self.network, fd_timeout=fd_timeout)
        self.qos = None
        if enable_qos:
            from repro.net.qos import QosManager

            self.qos = QosManager(self.network)
            self.qos.install()
        self.servers: Dict[str, VoDServer] = {}
        self.clients: Dict[str, VoDClient] = {}
        self.flyweight_pools: List[Any] = []
        self.controller = ScenarioController(self)
        self._server_counter = 0
        self._client_counter = 0
        # Lifecycle observers attached to every server, present and
        # future (see repro.faulting.InvariantChecker).
        self.server_observers: List[Any] = []
        for host_index in server_nodes:
            self.add_server(host_index)

    # ------------------------------------------------------------------
    # Placement-first construction
    # ------------------------------------------------------------------
    @classmethod
    def from_placement(
        cls,
        topology: Topology,
        plan: PlacementPlan,
        catalog: MovieCatalog,
        server_hosts: Optional[Mapping[str, int]] = None,
        **kwargs: Any,
    ) -> "Deployment":
        """Build a running service from a placement plan.

        The plan is validated against the catalog (every title needs a
        full replica), applied to it, and one server is brought up per
        plan server — on ``server_hosts[name]`` when given, else on
        hosts 0, 1, ... in sorted name order.  The deployment keeps the
        plan (``deployment.placement``) so late servers started by the
        scenario controller inherit their assignments too.  Remaining
        keyword arguments go to :class:`Deployment`.
        """
        plan.validate(catalog)
        plan.apply(catalog)
        kwargs.setdefault("replicate_all", False)
        deployment = cls(topology, catalog, placement=plan, **kwargs)
        names = plan.servers()
        if server_hosts is None:
            server_hosts = {name: index for index, name in enumerate(names)}
        for name in names:
            if name not in server_hosts:
                raise ServiceError(f"no host mapping for plan server {name!r}")
            deployment.add_server(server_hosts[name], name=name)
        return deployment

    # ------------------------------------------------------------------
    # Servers
    # ------------------------------------------------------------------
    def add_server(
        self,
        host_index: int,
        name: Optional[str] = None,
        movies: Optional[Iterable[str]] = None,
    ) -> VoDServer:
        """Bring a server up on the fly on ``topology.hosts[host_index]``.

        The server's stored titles come from, in order: the deprecated
        ``movies=`` list (routed through an explicit
        :class:`~repro.placement.StaticPlacement`), the deployment's
        placement plan, or — for servers the plan does not know — the
        ``replicate_all`` default.
        """
        if name is None:
            name = f"server{self._server_counter}"
        self._server_counter += 1
        if name in self.servers:
            raise ServiceError(f"server name {name!r} already in use")
        if movies is not None:
            warnings.warn(
                "add_server(movies=...) is deprecated; build the replica "
                "map with a placement strategy (repro.placement) and "
                "Deployment.from_placement instead",
                DeprecationWarning,
                stacklevel=2,
            )
            static = StaticPlacement.from_server_movies({name: movies})
            static.as_plan().apply(self.catalog)
        else:
            assigned = (
                self.placement.movies_for(name)
                if self.placement is not None
                else None
            )
            if assigned is not None:
                for title, prefix_s in assigned:
                    self.catalog.place_replica(title, name, prefix_s=prefix_s)
            elif self.replicate_all:
                for title in self.catalog.titles():
                    self.catalog.place_replica(title, name)
        node_id = self.topology.host(host_index)
        node = self.network.node(node_id)
        if not node.alive:
            node.restart()
        server = VoDServer(
            self.domain, node_id, name, self.catalog, self.server_config,
            admission_policy=self.admission_policy,
        )
        server.observers.extend(self.server_observers)
        for pool in self.flyweight_pools:
            server.attach_flyweight(pool)
        self.servers[name] = server
        return server

    def add_server_observer(self, observer: Any) -> None:
        """Attach a lifecycle observer to all servers, present and future."""
        self.server_observers.append(observer)
        for server in self.servers.values():
            server.observers.append(observer)

    def server(self, name: str) -> VoDServer:
        server = self.servers.get(name)
        if server is None:
            raise ServiceError(f"no server named {name!r}")
        return server

    def live_servers(self) -> List[VoDServer]:
        return [server for server in self.servers.values() if server.running]

    # ------------------------------------------------------------------
    # Clients — one admission surface
    # ------------------------------------------------------------------
    def attach(self, spec: ClientSpec) -> Any:
        """Admit viewers through one placement-aware entry point.

        ``spec.mode="full"`` attaches a :class:`VoDClient` on
        ``topology.hosts[spec.host]`` and returns it.  Large
        deployments can pack many clients onto one host by sharing a
        GCS ``endpoint`` and passing ``video_port=None`` so each client
        binds an ephemeral video port (the edge-concentrator rig of the
        scale experiment does both).

        ``spec.mode="flyweight"`` creates a columnar viewer pool for
        ``spec.movie``, attaches it to every server — present and
        future — and returns the pool (see
        :mod:`repro.client.flyweight`)."""
        if spec.mode == "full":
            if spec.host is None:
                raise ServiceError("ClientSpec(mode='full') needs a host")
            name = spec.name
            if name is None:
                name = f"client{self._client_counter}"
            self._client_counter += 1
            if name in self.clients:
                raise ServiceError(f"client name {name!r} already in use")
            node_id = self.topology.host(spec.host)
            client = VoDClient(
                self.domain, node_id, name, spec.config or self.client_config,
                endpoint=spec.endpoint, video_port=spec.video_port,
            )
            self.clients[name] = client
            return client
        if spec.mode == "flyweight":
            if spec.movie is None:
                raise ServiceError("ClientSpec(mode='flyweight') needs a movie")
            from repro.client.flyweight import FlyweightPool

            client_config = spec.client_config
            if client_config is None and self.client_config.session_mux:
                client_config = self.client_config
            pool = FlyweightPool(
                self, spec.movie, config=spec.config,
                client_config=client_config,
            )
            self.flyweight_pools.append(pool)
            for server in self.servers.values():
                server.attach_flyweight(pool)
            return pool
        raise ServiceError(
            f"unknown ClientSpec mode {spec.mode!r} "
            "(expected 'full' or 'flyweight')"
        )

    def attach_client(
        self,
        host_index: int,
        name: Optional[str] = None,
        config: Optional[ClientConfig] = None,
        endpoint: Optional[Any] = None,
        video_port: Optional[int] = VIDEO_PORT,
    ) -> VoDClient:
        """Compatibility wrapper over :meth:`attach` (mode="full")."""
        return self.attach(
            ClientSpec(
                mode="full", host=host_index, name=name, config=config,
                endpoint=endpoint, video_port=video_port,
            )
        )

    def client(self, name: str) -> VoDClient:
        client = self.clients.get(name)
        if client is None:
            raise ServiceError(f"no client named {name!r}")
        return client

    # ------------------------------------------------------------------
    # Flyweight viewers
    # ------------------------------------------------------------------
    def attach_flyweight(
        self,
        movie: str,
        config: Optional[Any] = None,
        client_config: Optional[ClientConfig] = None,
    ):
        """Compatibility wrapper over :meth:`attach` (mode="flyweight").

        Steady-state viewers then live as columnar rows served by the
        servers' cohort sessions (see :mod:`repro.client.flyweight`);
        use :meth:`FlyweightPool.promote` to inflate one into a full
        :class:`VoDClient` for interaction."""
        return self.attach(
            ClientSpec(
                mode="flyweight", movie=movie, config=config,
                client_config=client_config,
            )
        )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run_until(self, time: float) -> None:
        self.sim.run_until(time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Deployment servers={sorted(self.servers)} "
            f"clients={sorted(self.clients)}>"
        )
