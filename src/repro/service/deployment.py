"""Deployment builder: servers, clients and the catalog on a topology."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.client.player import ClientConfig, VoDClient
from repro.errors import ServiceError
from repro.gcs.domain import GcsDomain
from repro.media.catalog import MovieCatalog
from repro.net.address import VIDEO_PORT
from repro.net.topologies import Topology
from repro.server.server import ServerConfig, VoDServer
from repro.service.controller import ScenarioController


class Deployment:
    """A running VoD service on a simulated network.

    Parameters
    ----------
    topology:
        The network to deploy on (see :mod:`repro.net.topologies`).
    catalog:
        The movies.  When ``replicate_all`` is true every server gets a
        replica of every movie; otherwise use
        :meth:`MovieCatalog.place_replica` beforehand (or per server via
        the ``movies=`` argument of :meth:`add_server`).
    server_nodes:
        Host indices (into ``topology.hosts``) that run servers at start.
    """

    def __init__(
        self,
        topology: Topology,
        catalog: MovieCatalog,
        server_nodes: Sequence[int] = (),
        server_config: Optional[ServerConfig] = None,
        client_config: Optional[ClientConfig] = None,
        replicate_all: bool = True,
        fd_timeout: Optional[float] = None,
        enable_qos: bool = False,
    ) -> None:
        self.topology = topology
        self.network = topology.network
        self.sim = topology.sim
        self.catalog = catalog
        self.server_config = server_config or ServerConfig()
        self.client_config = client_config or ClientConfig()
        self.replicate_all = replicate_all
        self.domain = GcsDomain(self.sim, self.network, fd_timeout=fd_timeout)
        self.qos = None
        if enable_qos:
            from repro.net.qos import QosManager

            self.qos = QosManager(self.network)
            self.qos.install()
        self.servers: Dict[str, VoDServer] = {}
        self.clients: Dict[str, VoDClient] = {}
        self.flyweight_pools: List[Any] = []
        self.controller = ScenarioController(self)
        self._server_counter = 0
        self._client_counter = 0
        # Lifecycle observers attached to every server, present and
        # future (see repro.faulting.InvariantChecker).
        self.server_observers: List[Any] = []
        for host_index in server_nodes:
            self.add_server(host_index)

    # ------------------------------------------------------------------
    # Servers
    # ------------------------------------------------------------------
    def add_server(
        self,
        host_index: int,
        name: Optional[str] = None,
        movies: Optional[Iterable[str]] = None,
    ) -> VoDServer:
        """Bring a server up on the fly on ``topology.hosts[host_index]``."""
        if name is None:
            name = f"server{self._server_counter}"
        self._server_counter += 1
        if name in self.servers:
            raise ServiceError(f"server name {name!r} already in use")
        if movies is not None:
            for title in movies:
                self.catalog.place_replica(title, name)
        elif self.replicate_all:
            for title in self.catalog.titles():
                self.catalog.place_replica(title, name)
        node_id = self.topology.host(host_index)
        node = self.network.node(node_id)
        if not node.alive:
            node.restart()
        server = VoDServer(
            self.domain, node_id, name, self.catalog, self.server_config
        )
        server.observers.extend(self.server_observers)
        for pool in self.flyweight_pools:
            server.attach_flyweight(pool)
        self.servers[name] = server
        return server

    def add_server_observer(self, observer: Any) -> None:
        """Attach a lifecycle observer to all servers, present and future."""
        self.server_observers.append(observer)
        for server in self.servers.values():
            server.observers.append(observer)

    def server(self, name: str) -> VoDServer:
        server = self.servers.get(name)
        if server is None:
            raise ServiceError(f"no server named {name!r}")
        return server

    def live_servers(self) -> List[VoDServer]:
        return [server for server in self.servers.values() if server.running]

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def attach_client(
        self,
        host_index: int,
        name: Optional[str] = None,
        config: Optional[ClientConfig] = None,
        endpoint: Optional[Any] = None,
        video_port: Optional[int] = VIDEO_PORT,
    ) -> VoDClient:
        """Attach a client to ``topology.hosts[host_index]``.

        Large deployments can pack many clients onto one host by sharing
        a GCS ``endpoint`` and passing ``video_port=None`` so each client
        binds an ephemeral video port (the edge-concentrator rig of the
        scale experiment does both)."""
        if name is None:
            name = f"client{self._client_counter}"
        self._client_counter += 1
        if name in self.clients:
            raise ServiceError(f"client name {name!r} already in use")
        node_id = self.topology.host(host_index)
        client = VoDClient(
            self.domain, node_id, name, config or self.client_config,
            endpoint=endpoint, video_port=video_port,
        )
        self.clients[name] = client
        return client

    def client(self, name: str) -> VoDClient:
        client = self.clients.get(name)
        if client is None:
            raise ServiceError(f"no client named {name!r}")
        return client

    # ------------------------------------------------------------------
    # Flyweight viewers
    # ------------------------------------------------------------------
    def attach_flyweight(
        self,
        movie: str,
        config: Optional[Any] = None,
        client_config: Optional[ClientConfig] = None,
    ):
        """Create a flyweight viewer pool for ``movie`` and attach it to
        every server, present and future.

        Steady-state viewers then live as columnar rows served by the
        servers' cohort sessions (see :mod:`repro.client.flyweight`);
        use :meth:`FlyweightPool.promote` to inflate one into a full
        :class:`VoDClient` for interaction."""
        from repro.client.flyweight import FlyweightPool

        if client_config is None and self.client_config.session_mux:
            client_config = self.client_config
        pool = FlyweightPool(
            self, movie, config=config, client_config=client_config
        )
        self.flyweight_pools.append(pool)
        for server in self.servers.values():
            server.attach_flyweight(pool)
        return pool

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run_until(self, time: float) -> None:
        self.sim.run_until(time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Deployment servers={sorted(self.servers)} "
            f"clients={sorted(self.clients)}>"
        )
