"""Service layer: deployments and scenario orchestration.

A :class:`Deployment` wires the whole system together on a simulated
topology — GCS domain, servers with replicated movies, clients — and a
:class:`ScenarioController` schedules the events the paper's evaluation
uses: server crashes, graceful detaches, bringing servers up on the fly,
and network partitions.
"""

from repro.service.protocol import (
    SERVER_GROUP,
    ClientRecord,
    ConnectRequest,
    EmergencyLevel,
    FlowControlMsg,
    FlowKind,
    FramePacket,
    StateSync,
    VcrCommand,
    VcrOp,
    movie_group,
    session_group,
)

__all__ = [
    "ClientRecord",
    "ConnectRequest",
    "Deployment",
    "EmergencyLevel",
    "FlowControlMsg",
    "FlowKind",
    "FramePacket",
    "SERVER_GROUP",
    "ScenarioController",
    "ScenarioEvent",
    "StateSync",
    "VcrCommand",
    "VcrOp",
    "movie_group",
    "session_group",
]

_LAZY_EXPORTS = {
    "Deployment": ("repro.service.deployment", "Deployment"),
    "ScenarioController": ("repro.service.controller", "ScenarioController"),
    "ScenarioEvent": ("repro.service.controller", "ScenarioEvent"),
}


def __getattr__(name):
    # Deployment imports the client and server packages, which in turn
    # import repro.service.protocol; resolving it lazily (PEP 562)
    # breaks that import cycle.
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    return getattr(module, target[1])
