"""Measurement utilities: counters, time series, and report formatting.

Every figure in the paper is a time series collected at the client; the
probes here sample those series on a timer so experiment code can
extract exactly the curves of Figures 4 and 5.
"""

from repro.metrics.collector import Counter, Probe, TimeSeries
from repro.metrics.report import Table, format_series_summary

__all__ = [
    "Counter",
    "Probe",
    "Table",
    "TimeSeries",
    "format_series_summary",
]
