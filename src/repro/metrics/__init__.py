"""Measurement utilities: counters, time series, and report formatting.

Every figure in the paper is a time series collected at the client; the
probes sample those series on a timer so experiment code can extract
exactly the curves of Figures 4 and 5.  The collectors themselves now
live in :mod:`repro.telemetry` (the unified observability API); this
package keeps the text-report formatting and re-exports the collectors
for compatibility.
"""

from repro.metrics.report import Table, format_series_summary
from repro.telemetry.series import Counter, Probe, TimeSeries

__all__ = [
    "Counter",
    "Probe",
    "Table",
    "TimeSeries",
    "format_series_summary",
]
