"""Plain-text report formatting for experiment output.

The benchmark harness prints the regenerated rows/series of each paper
figure with these helpers, so `pytest benchmarks/ -s` reads like the
paper's evaluation section.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.telemetry.series import TimeSeries


class Table:
    """A minimal fixed-width text table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_format_cell(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "-" * len(self.title)]
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def format_series_summary(
    series: TimeSeries,
    sample_every: float = 20.0,
    end: Optional[float] = None,
) -> str:
    """Render a time series as sparse ``t=... v=...`` sample lines."""
    if len(series) == 0:
        return f"{series.name}: (empty)"
    last_time = series.times[-1] if end is None else end
    lines = [f"{series.name}:"]
    t = 0.0
    while t <= last_time + 1e-9:
        value = series.value_at(t)
        if value is not None:
            lines.append(f"  t={t:7.1f}s  {value:10.1f}")
        t += sample_every
    return "\n".join(lines)
