"""Deprecated shim — collectors moved to :mod:`repro.telemetry.series`.

Kept so pre-telemetry imports (``from repro.metrics.collector import
Probe``) keep working; new code should import from
:mod:`repro.telemetry`.
"""

import warnings

from repro.telemetry.series import Counter, Probe, TimeSeries

__all__ = ["Counter", "Probe", "TimeSeries"]

warnings.warn(
    "repro.metrics.collector moved to repro.telemetry.series; "
    "import Counter/TimeSeries/Probe from repro.telemetry instead",
    DeprecationWarning,
    stacklevel=2,
)
