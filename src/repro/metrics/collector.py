"""Counters, time series and sampling probes."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.sim.core import Simulator
from repro.sim.process import Timer


@dataclass
class Counter:
    """A monotonically increasing event counter."""

    name: str
    value: int = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class TimeSeries:
    """(time, value) samples with query helpers used by the experiments."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"time series {self.name!r} got out-of-order sample at {time}"
            )
        self._times.append(time)
        self._values.append(value)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> Sequence[float]:
        return tuple(self._times)

    @property
    def values(self) -> Sequence[float]:
        return tuple(self._values)

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def value_at(self, time: float) -> Optional[float]:
        """Last sample at or before ``time`` (step interpolation)."""
        position = bisect.bisect_right(self._times, time) - 1
        if position < 0:
            return None
        return self._values[position]

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def min(self, start: float = float("-inf"), end: float = float("inf")):
        values = [v for t, v in self.window(start, end)]
        return min(values) if values else None

    def max(self, start: float = float("-inf"), end: float = float("inf")):
        values = [v for t, v in self.window(start, end)]
        return max(values) if values else None

    def mean(self, start: float = float("-inf"), end: float = float("inf")):
        values = [v for t, v in self.window(start, end)]
        return sum(values) / len(values) if values else None

    def final(self) -> Optional[float]:
        return self._values[-1] if self._values else None

    def increase_over(self, start: float, end: float) -> float:
        """Value growth across a window (for cumulative counters)."""
        before = self.value_at(start)
        after = self.value_at(end)
        return (after or 0.0) - (before or 0.0)


@dataclass
class Probe:
    """Samples callables into time series on a fixed period."""

    sim: Simulator
    period: float
    _sources: List[Tuple[TimeSeries, Callable[[], float]]] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        self._timer = Timer(self.sim, self.period, self._sample, start_delay=0.0)

    def watch(self, name: str, source: Callable[[], float]) -> TimeSeries:
        series = TimeSeries(name)
        self._sources.append((series, source))
        return series

    def stop(self) -> None:
        self._timer.cancel()

    def _sample(self) -> None:
        now = self.sim.now
        for series, source in self._sources:
            series.record(now, float(source()))
