"""Terminal line charts for the experiment runner.

The paper's figures are simple time-series plots; rendering them as
text keeps the reproduction dependency-free while making
``repro-vod figure4`` output look like the evaluation section instead
of a number dump.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.telemetry.series import TimeSeries

Point = Tuple[float, float]


def render_chart(
    series: Sequence[Point],
    title: str = "",
    width: int = 64,
    height: int = 12,
    y_label: str = "",
    x_label: str = "time (s)",
    markers: Optional[Iterable[Tuple[float, str]]] = None,
) -> str:
    """Render (t, value) points as an ASCII line chart.

    ``markers`` are (time, label) annotations drawn as vertical ticks on
    the x axis — used for the crash / load-balance event times.
    """
    points = [(float(t), float(v)) for t, v in series]
    if len(points) < 2:
        return f"{title}\n  (not enough data)"
    t_min, t_max = points[0][0], points[-1][0]
    values = [v for _t, v in points]
    v_min, v_max = min(values), max(values)
    if v_max == v_min:
        v_max = v_min + 1.0
    t_span = (t_max - t_min) or 1.0

    # Rasterize: one column = one time bucket, plot the bucket mean.
    columns: List[Optional[float]] = [None] * width
    counts = [0] * width
    for t, v in points:
        col = min(width - 1, int((t - t_min) / t_span * width))
        columns[col] = (columns[col] or 0.0) + v
        counts[col] += 1
    for col in range(width):
        if counts[col]:
            columns[col] /= counts[col]

    grid = [[" "] * width for _ in range(height)]
    last_row = None
    for col, value in enumerate(columns):
        if value is None:
            continue
        row = int((value - v_min) / (v_max - v_min) * (height - 1))
        row = height - 1 - max(0, min(height - 1, row))
        grid[row][col] = "*"
        if last_row is not None:
            step = 1 if row > last_row else -1
            for fill in range(last_row + step, row, step):
                if grid[fill][col] == " ":
                    grid[fill][col] = "|"
        last_row = row

    label_width = max(len(f"{v_max:.0f}"), len(f"{v_min:.0f}")) + 1
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{v_max:.0f}".rjust(label_width)
        elif i == height - 1:
            label = f"{v_min:.0f}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    axis = [" "] * width
    marker_notes = []
    for time, note in markers or ():
        if not t_min <= time <= t_max:
            continue
        col = min(width - 1, int((time - t_min) / t_span * width))
        axis[col] = "^"
        marker_notes.append(f"^ t={time:.0f}s {note}")
    lines.append(" " * label_width + " +" + "-" * width)
    if any(ch != " " for ch in axis):
        lines.append(" " * label_width + "  " + "".join(axis))
    lines.append(
        " " * label_width
        + f"  {t_min:.0f}s"
        + f"{t_max:.0f}s".rjust(width - len(f"{t_min:.0f}s"))
    )
    footer = ", ".join(filter(None, [y_label, x_label and f"x: {x_label}"]))
    if footer:
        lines.append(" " * label_width + "  " + footer)
    lines.extend(" " * label_width + "  " + note for note in marker_notes)
    return "\n".join(lines)


def render_timeseries(
    series: TimeSeries,
    title: str = "",
    markers: Optional[Iterable[Tuple[float, str]]] = None,
    **kwargs,
) -> str:
    """Chart a :class:`TimeSeries` directly."""
    return render_chart(
        series.points(), title=title or series.name, markers=markers, **kwargs
    )
