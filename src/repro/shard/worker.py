"""Spawn-importable shard workers and the golden disjoint rig.

Everything here is addressable by module path — the contract spawned
workers live under (:mod:`repro.shard.runner`): top-level functions
and plain-data tasks only, simulation state constructed inside the
worker.

The *disjoint rig* is the windowed mode's golden configuration: ``n``
movie groups, each with its own head-end server, edge concentrator and
viewer cohort, deliberately built so the shard decomposition is exact
— shard *k* simulates ``server{k}``/``movie{k}``/viewers ``s{k}c*``
and nothing else, while the combined build runs all groups in one
kernel.  The per-group placement (``movie{k}`` only on ``server{k}``)
makes admission keep every viewer inside its group in the combined
build too, so the union of per-shard traces must equal the combined
trace — the equivalence ``tests/shard/test_sync_golden.py`` pins
against committed goldens.

Seeds: shard *k* runs under ``shard_seed(base, k)`` while the combined
build runs under ``base``.  That is sound *for this rig* because its
links are clean and loss-free — the simulator provably draws no random
numbers — and the golden test would catch any future divergence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.shard.merge import MergeError
from repro.shard.plan import ShardTask

#: Golden-rig defaults (small on purpose: the golden pins equivalence,
#: not throughput).
VIEWERS_PER_SHARD = 12
BATCH_WINDOW_S = 1.0
CONNECT_WINDOW_S = 1.0
MOVIE_DURATION_S = 60.0


class SessionTrace:
    """Server-side session observer in the conformance-trace format.

    Per client, the ordered ``(server, offset, takeover)`` session-start
    sequence; absolute timestamps deliberately excluded (the PR 5
    convention — daemon-set differences legitimately shift GCS event
    times by sub-millisecond amounts between builds)."""

    def __init__(self) -> None:
        self.starts: Dict[str, List[Tuple[str, int, bool]]] = {}

    def on_session_start(self, server, record, takeover: bool) -> None:
        self.starts.setdefault(record.client.name, []).append(
            (server.name, int(record.offset), bool(takeover))
        )


def build_disjoint_rig(
    n_shards: int,
    shard_id: Optional[int] = None,
    viewers_per_shard: int = VIEWERS_PER_SHARD,
    seed: int = 77,
    batch_window_s: float = BATCH_WINDOW_S,
    connect_window_s: float = CONNECT_WINDOW_S,
):
    """Build the golden rig — one shard of it, or the whole thing.

    ``shard_id=None`` builds the combined single-process deployment
    (all groups, one kernel); an integer builds that shard's group
    alone.  Returns ``(sim, deployment, pools, trace)`` where ``pools``
    maps movie title to its flyweight pool and ``trace`` is an attached
    :class:`SessionTrace`.
    """
    from repro.client.flyweight import FlyweightConfig
    from repro.client.player import ClientConfig
    from repro.experiments.scale import build_edge_lan
    from repro.media.catalog import MovieCatalog
    from repro.media.movie import Movie
    from repro.placement import PlacementContext, ServerProfile
    from repro.placement.strategies import StaticPlacement
    from repro.server.server import ServerConfig
    from repro.service.deployment import Deployment
    from repro.sim.core import Simulator

    if shard_id is not None and not 0 <= shard_id < n_shards:
        raise ReproError(
            f"shard id {shard_id} outside disjoint rig of {n_shards}"
        )
    groups = [shard_id] if shard_id is not None else list(range(n_shards))

    sim = Simulator(seed=seed)
    topology = build_edge_lan(sim, n_servers=len(groups), n_edges=len(groups))
    catalog = MovieCatalog(
        [
            Movie.synthetic(f"movie{group}", duration_s=MOVIE_DURATION_S)
            for group in groups
        ]
    )
    profiles = [ServerProfile(name=f"server{group}") for group in groups]
    static = StaticPlacement.from_server_movies(
        {f"server{group}": [f"movie{group}"] for group in groups}
    )
    plan = static.build(
        PlacementContext(catalog=catalog, servers=profiles, k=1)
    )
    deployment = Deployment.from_placement(
        topology,
        plan,
        catalog,
        server_hosts={
            f"server{group}": slot for slot, group in enumerate(groups)
        },
        server_config=ServerConfig(
            batch_window_s=batch_window_s, session_mux=True
        ),
        client_config=ClientConfig(session_mux=True),
    )
    trace = SessionTrace()
    deployment.add_server_observer(trace)

    pools: Dict[str, object] = {}
    for slot, group in enumerate(groups):
        pool = deployment.attach_flyweight(
            f"movie{group}", config=FlyweightConfig(senders_max=1)
        )
        edge_host = len(groups) + slot
        for index in range(viewers_per_shard):
            pool.add_viewer(edge_host, name=f"s{group}c{index}")
        pool.connect_all(connect_window_s)
        pools[f"movie{group}"] = pool
    return sim, deployment, pools, trace


class DisjointShard:
    """One golden-rig shard under the windowed barrier protocol."""

    def __init__(self, task: ShardTask) -> None:
        params = task.params
        self.shard_id = task.shard_id
        sim, deployment, pools, trace = build_disjoint_rig(
            n_shards=task.n_shards,
            shard_id=task.shard_id,
            viewers_per_shard=int(
                task.n_viewers or params.get(
                    "viewers_per_shard", VIEWERS_PER_SHARD
                )
            ),
            seed=task.seed,
            batch_window_s=float(
                params.get("batch_window_s", BATCH_WINDOW_S)
            ),
            connect_window_s=float(
                params.get("connect_window_s", CONNECT_WINDOW_S)
            ),
        )
        self.sim = sim
        self.deployment = deployment
        self.pool = next(iter(pools.values()))
        self.trace = trace
        self.events = 0
        self.digests: List[Dict] = []

    def step(self, target_t: float) -> None:
        while self.sim.now < target_t:
            self.events += self.sim.run_until(target_t)

    def boundary(self) -> Dict:
        return {
            "shard": self.shard_id,
            "now": self.sim.now,
            "events": self.events,
            "frames": int(self.pool.frames_served()),
        }

    def absorb(self, digest: Dict) -> None:
        # The capacity-coupling hook: an admission policy reading
        # cluster-wide load would consume the digest here, one window
        # late — exactly the conservative lag.  The golden rig only
        # records it.
        self.digests.append(digest)

    def finish(self) -> Dict:
        return {
            "shard": self.shard_id,
            "events": self.events,
            "windows": len(self.digests),
            "starts": {
                name: [list(entry) for entry in entries]
                for name, entries in sorted(self.trace.starts.items())
            },
            "final": {
                name: int(position)
                for name, position in sorted(self.pool.positions().items())
            },
        }


def build_golden_shard(task: ShardTask) -> DisjointShard:
    """Spawn-importable builder for :func:`repro.shard.sync.run_windowed`."""
    return DisjointShard(task)


def run_shard_straight(task: ShardTask, duration_s: float) -> Dict:
    """The same shard run flat-out (no windows) — the perturbation probe.

    Windowed and straight results must be bit-identical; any divergence
    means the barrier grid changed simulated behaviour, which the
    conservative contract forbids.
    """
    shard = DisjointShard(task)
    shard.step(duration_s)
    return shard.finish()


def run_disjoint_single(
    n_shards: int,
    duration_s: float,
    viewers_per_shard: int = VIEWERS_PER_SHARD,
    seed: int = 77,
    batch_window_s: float = BATCH_WINDOW_S,
    connect_window_s: float = CONNECT_WINDOW_S,
) -> Dict:
    """Run all groups in one single-process kernel (the reference)."""
    sim, deployment, pools, trace = build_disjoint_rig(
        n_shards=n_shards,
        shard_id=None,
        viewers_per_shard=viewers_per_shard,
        seed=seed,
        batch_window_s=batch_window_s,
        connect_window_s=connect_window_s,
    )
    events = sim.run_until(duration_s)
    final: Dict[str, int] = {}
    for pool in pools.values():
        final.update(
            (name, int(position))
            for name, position in pool.positions().items()
        )
    return {
        "events": events,
        "starts": {
            name: [list(entry) for entry in entries]
            for name, entries in sorted(trace.starts.items())
        },
        "final": {name: final[name] for name in sorted(final)},
    }


def merge_traces(shard_results: List[Dict]) -> Dict:
    """Union per-shard traces into the combined-run shape.

    Shards own disjoint viewers; a duplicate name means the shard map
    was wrong."""
    starts: Dict[str, List] = {}
    final: Dict[str, int] = {}
    for result in shard_results:
        for name, entries in result["starts"].items():
            if name in starts:
                raise MergeError(
                    f"client {name!r} traced by more than one shard"
                )
            starts[name] = [list(entry) for entry in entries]
        for name, position in result["final"].items():
            if name in final and final[name] != int(position):
                raise MergeError(
                    f"client {name!r} finished in more than one shard"
                )
            final[name] = int(position)
    return {
        "starts": {name: starts[name] for name in sorted(starts)},
        "final": {name: final[name] for name in sorted(final)},
    }
