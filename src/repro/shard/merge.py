"""Order-independent merging of per-shard telemetry.

Shared-nothing shards each finish with their own QoE scorecards, SLO
accounting, metric snapshots and failover latencies.  The functions
here fold those into one run-level view with two contracts:

* **Order independence** — every merge is commutative and associative
  over its inputs (shards are keyed or summed, never positionally
  folded), so the merged result cannot depend on worker completion
  order.  Property-tested in ``tests/shard/test_merge_properties.py``.
* **Single-process equivalence** — merging the shards of a *disjoint*
  deployment equals running the whole deployment in one process: QoE
  cards union (client keys are disjoint by construction), metric
  counters and histograms sum, and SLO windows sum component-wise
  before the rules re-evaluate the merged sequence.

At the million-viewer scale per-client scorecards stop being a
reasonable wire format (a dict of 10⁶ dataclasses per shard), so the
scale rig summarizes each shard's viewers into a
:class:`ScoreHistogram` — integer-bucketed 0..100 QoE scores whose
merge is exact (bucket-wise sum) and whose quantiles are exact to one
score point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ReproError
from repro.telemetry.slo import RuleState, WindowSnapshot, default_rules


class MergeError(ReproError):
    """Per-shard results that cannot be merged coherently."""


# ----------------------------------------------------------------------
# QoE scorecards
# ----------------------------------------------------------------------
def merge_scorecards(shard_cards: Iterable[Dict[str, object]]) -> Dict:
    """Union per-shard ``{client: QoEScorecard}`` maps.

    Shards own disjoint viewers, so a duplicate client name means the
    shard map was wrong — that is an error, not a tie to break."""
    merged: Dict[str, object] = {}
    for cards in shard_cards:
        for name, card in cards.items():
            if name in merged:
                raise MergeError(
                    f"client {name!r} appears in more than one shard; "
                    "shards must own disjoint viewer populations"
                )
            merged[name] = card
    return merged


@dataclass
class ScoreHistogram:
    """Integer-bucketed 0..100 score distribution, exactly mergeable.

    Scores land in ``counts[floor(score)]`` (100 shares the top
    bucket), ``total`` keeps the exact float sum for the mean.  Merging
    is a bucket-wise sum, so quantiles over merged shards are exact to
    one score point no matter how many viewers each shard held.
    """

    counts: List[int] = field(default_factory=lambda: [0] * 101)
    n: int = 0
    total: float = 0.0

    def add(self, score: float, weight: int = 1) -> None:
        bucket = min(100, max(0, int(score)))
        self.counts[bucket] += weight
        self.n += weight
        self.total += score * weight

    def merge(self, other: "ScoreHistogram") -> "ScoreHistogram":
        out = ScoreHistogram(
            counts=[a + b for a, b in zip(self.counts, other.counts)],
            n=self.n + other.n,
            total=self.total + other.total,
        )
        return out

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the bucketed scores."""
        if self.n == 0:
            return 0.0
        rank = max(1, min(self.n, int(q * self.n + 0.999999)))
        seen = 0
        for bucket, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return float(bucket)
        return 100.0

    def as_dict(self) -> Dict:
        return {
            "n": self.n,
            "mean": self.mean,
            "p10": self.quantile(0.10),
            "p50": self.quantile(0.50),
            "counts": {
                str(bucket): count
                for bucket, count in enumerate(self.counts)
                if count
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ScoreHistogram":
        hist = cls()
        for bucket, count in payload.get("counts", {}).items():
            hist.counts[int(bucket)] = int(count)
        hist.n = int(payload.get("n", sum(hist.counts)))
        hist.total = float(
            payload.get("total", payload.get("mean", 0.0) * hist.n)
        )
        return hist


def merge_score_histograms(
    histograms: Iterable[ScoreHistogram],
) -> ScoreHistogram:
    merged = ScoreHistogram()
    for histogram in histograms:
        merged = merged.merge(histogram)
    return merged


# ----------------------------------------------------------------------
# SLO accounting
# ----------------------------------------------------------------------
def merge_slo_windows(
    shard_windows: Sequence[Sequence[WindowSnapshot]],
) -> List[WindowSnapshot]:
    """Sum per-shard window sequences component-wise.

    Every shard's :class:`~repro.telemetry.slo.SloMonitor` (run with
    ``record_windows=True``) closes windows on the same ``window_s``
    grid; aligned windows sum their client/stall/failover/bandwidth
    accumulators, which is exactly what one monitor over the combined
    event stream would have accumulated (clients are disjoint across
    shards).  A shard that went quiet early contributes its last
    cumulative state to the remaining windows (zero in-window
    activity).  Misaligned boundaries — different ``window_s``, or a
    lazy trailing window that spans several grid steps — raise
    :class:`MergeError` rather than merging approximately.
    """
    lists = [list(windows) for windows in shard_windows if windows]
    if not lists:
        return []
    grid = max(lists, key=len)
    boundaries = [(w.start, w.end) for w in grid]
    for windows in lists:
        for index, window in enumerate(windows):
            if (window.start, window.end) != boundaries[index]:
                raise MergeError(
                    f"shard window {index} covers "
                    f"[{window.start}, {window.end}) but the grid has "
                    f"[{boundaries[index][0]}, {boundaries[index][1]}); "
                    "shards must share window_s and close on the same "
                    "boundaries to merge exactly"
                )
    merged: List[WindowSnapshot] = []
    for index, (start, end) in enumerate(boundaries):
        clients = stalled = window_failovers = rejects = 0
        extra = base = 0.0
        failovers: List[float] = []
        for windows in lists:
            if index < len(windows):
                window = windows[index]
                clients += window.clients
                stalled += window.stalled
                window_failovers += window.window_failovers
                rejects += window.rejects
                extra += window.extra_frames
                base += window.base_frames
                failovers.extend(window.failover_durations)
            elif windows:
                # Quiet shard: cumulative state persists, nothing new.
                clients += windows[-1].clients
                failovers.extend(windows[-1].failover_durations)
        merged.append(
            WindowSnapshot(
                start=start,
                end=end,
                clients=clients,
                stalled=stalled,
                failover_durations=sorted(failovers),
                window_failovers=window_failovers,
                extra_frames=extra,
                base_frames=base,
                rejects=rejects,
            )
        )
    return merged


def slo_summary_from_windows(
    windows: Sequence[WindowSnapshot],
    rules=None,
    burn_threshold: float = 1.0,
) -> Dict[str, Dict]:
    """Evaluate SLO rules over a closed window sequence.

    The same fold :class:`~repro.telemetry.slo.SloMonitor` applies
    online (breach = ok->not-ok transition, burn = burn rate over the
    threshold), minus the bus emissions — so replaying a monitor's own
    recorded windows reproduces its summary, and replaying *merged*
    windows yields the combined run's summary.
    """
    rules = tuple(rules) if rules is not None else default_rules()
    states = {rule.name: RuleState(rule=rule) for rule in rules}
    for window in windows:
        for rule in rules:
            verdict = rule.evaluate(window)
            state = states[rule.name]
            state.windows += 1
            state.value = verdict.value
            state.worst = max(state.worst, abs(verdict.value))
            if verdict.burn_rate is not None and (
                verdict.burn_rate >= burn_threshold
            ):
                state.burn_windows += 1
            if not verdict.ok and state.ok:
                state.breaches += 1
            state.ok = verdict.ok
    return {name: state.as_dict() for name, state in states.items()}


def sharded_slo_summary(
    n_clients: int,
    duration_s: float,
    failover_latencies: Sequence[float],
    stalled_clients: int = 0,
    rules=None,
) -> Dict[str, Dict]:
    """SLO verdicts for a merged shared-nothing scale run.

    Flyweight shards run with telemetry off (measurement mode), so
    there is no per-window stream to merge; instead the paper's rules
    evaluate one whole-run window built from the merged facts: the
    viewer population, which viewers stalled (none can, on clean
    links — rows advance arithmetically), and every measured failover
    latency.  Uses the real rule objects, not a reimplementation.
    """
    latencies = sorted(float(value) for value in failover_latencies)
    window = WindowSnapshot(
        start=0.0,
        end=float(duration_s),
        clients=int(n_clients),
        stalled=int(stalled_clients),
        failover_durations=latencies,
        window_failovers=len(latencies),
        extra_frames=0.0,
        base_frames=0.0,
    )
    return slo_summary_from_windows([window], rules=rules)


# ----------------------------------------------------------------------
# Metric snapshots
# ----------------------------------------------------------------------
def merge_metric_snapshots(
    snapshots: Iterable[Dict[str, object]],
) -> Dict[str, object]:
    """Merge :meth:`MetricRegistry.snapshot` dumps across shards.

    Counters (ints) sum; histograms (dicts) require identical bucket
    layouts and sum count-wise, with the mean recomputed from the
    merged totals; gauges (floats / ``None``) keep the maximum — there
    is no global last-writer across processes, and every current gauge
    is entity-scoped so disjoint shards never collide on one anyway.
    """
    merged: Dict[str, object] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            if name not in merged:
                merged[name] = _copy_metric(value)
                continue
            merged[name] = _combine_metric(name, merged[name], value)
    return merged


def _copy_metric(value):
    if isinstance(value, dict):
        out = dict(value)
        out["counts"] = list(value.get("counts", ()))
        out["buckets"] = list(value.get("buckets", ()))
        return out
    return value


def _combine_metric(name: str, left, right):
    if isinstance(left, bool) or isinstance(right, bool):
        raise MergeError(f"metric {name!r} has a non-mergeable bool value")
    if isinstance(left, dict) != isinstance(right, dict):
        raise MergeError(
            f"metric {name!r} is a histogram in one shard but not another"
        )
    if isinstance(left, dict):
        if list(left.get("buckets", ())) != list(right.get("buckets", ())):
            raise MergeError(
                f"histogram {name!r} has mismatched bucket layouts"
            )
        counts = [a + b for a, b in zip(left["counts"], right["counts"])]
        count = left["count"] + right["count"]
        total = _add_optional(left.get("total"), right.get("total"))
        return {
            "count": count,
            "total": total,
            "mean": (total / count) if (count and total is not None) else (
                None if total is None else 0.0
            ),
            "buckets": list(left["buckets"]),
            "counts": counts,
        }
    if isinstance(left, int) and isinstance(right, int):
        return left + right  # counters
    # Gauges: floats (or None for non-finite exports).
    if left is None:
        return right
    if right is None:
        return left
    return max(left, right)


def _add_optional(left: Optional[float], right: Optional[float]):
    if left is None or right is None:
        return None
    return left + right


# ----------------------------------------------------------------------
# Incidents (flight recorder)
# ----------------------------------------------------------------------
def merge_incidents(
    shard_incidents: Iterable,
    overlap_groups: bool = True,
) -> List:
    """Merge per-shard flight-recorder incidents, order-independently.

    ``shard_incidents`` yields ``(shard_id, incidents)`` pairs where
    each incident is an :class:`~repro.telemetry.flight.Incident` or
    its ``as_dict()`` form.  Every incident is stamped with its shard,
    then the whole set is sorted by the deterministic key
    ``(trigger_t, shard, id)`` — so the merged sequence cannot depend
    on worker completion order (the reversed-input self-check in the
    scale rig holds by construction).

    With ``overlap_groups`` (the default), incidents from *different*
    shards whose windows overlap in sim time fold into one cross-shard
    incident — the same injected fault seen from four shards is one
    event, not four.  The folded incident unions the windows, keeps
    the earliest trigger as primary, concatenates triggers/breakdowns/
    chains/excerpts in deterministic sorted order, sums the QoE impact
    (shards own disjoint viewers) and lists its members.
    """
    import json as _json

    from repro.telemetry.flight import Incident

    stamped: List[Incident] = []
    for shard_id, incidents in shard_incidents:
        for item in incidents:
            if isinstance(item, Incident):
                payload = item.as_dict()
            else:
                payload = dict(item)
            incident = Incident.from_dict(payload)
            incident.shard = str(shard_id)
            stamped.append(incident)
    stamped.sort(key=lambda i: (i.trigger_t, i.shard or "", i.id))

    def _stable(record: Dict) -> str:
        return _json.dumps(record, sort_keys=True, default=str)

    groups: List[List[Incident]] = []
    for incident in stamped:
        if overlap_groups and groups:
            group = groups[-1]
            group_end = max(i.window_end for i in group)
            # Group on the *trigger* falling inside the open window, not
            # on raw window overlap: a pre-trigger lookback legitimately
            # reaches back into the previous incident without making the
            # two one event.
            if incident.trigger_t <= group_end:
                group.append(incident)
                continue
        groups.append([incident])

    merged: List[Incident] = []
    for index, group in enumerate(groups, start=1):
        if len(group) == 1:
            incident = group[0]
            out = Incident.from_dict(incident.as_dict())
            out.id = f"incident#{index}"
            out.qoe = dict(incident.qoe)
            out.qoe["members"] = [
                {"shard": incident.shard, "id": incident.id}
            ]
            merged.append(out)
            continue
        primary = group[0]
        triggers = sorted(
            (t for i in group for t in i.triggers),
            key=lambda t: (t.get("t", 0.0), t.get("kind", ""), _stable(t)),
        )
        breakdowns = sorted(
            (b for i in group for b in i.breakdowns),
            key=lambda b: (
                b.get("crash_t", 0.0), b.get("client", ""), _stable(b)
            ),
        )
        chains = sorted(
            (c for i in group for c in i.chains),
            key=lambda c: (c.get("start", 0.0), c.get("cause", ""), _stable(c)),
        )
        excerpt = sorted(
            (e for i in group for e in i.excerpt),
            key=lambda e: (e.get("t", 0.0), e.get("kind", ""), _stable(e)),
        )
        totals: Dict[str, float] = {}
        top: List[Dict] = []
        clients_hit = 0
        for incident in group:
            qoe = incident.qoe or {}
            clients_hit += int(qoe.get("clients_hit", 0))
            for key, value in (qoe.get("totals") or {}).items():
                totals[key] = totals.get(key, 0) + value
            top.extend(qoe.get("top") or [])
        top.sort(key=lambda i: (-i.get("penalty", 0.0), i.get("client", "")))
        merged.append(Incident(
            id=f"incident#{index}",
            trigger_kind=primary.trigger_kind,
            trigger_t=primary.trigger_t,
            trigger_detail=primary.trigger_detail,
            shard=",".join(sorted({i.shard or "" for i in group})),
            window_start=min(i.window_start for i in group),
            window_end=max(i.window_end for i in group),
            triggers=triggers,
            n_triggers=sum(i.n_triggers for i in group),
            pre_records=sum(i.pre_records for i in group),
            captured_records=sum(i.captured_records for i in group),
            truncated_records=sum(i.truncated_records for i in group),
            breakdowns=breakdowns,
            n_breakdowns=sum(i.n_breakdowns for i in group),
            chains=chains,
            n_chains=sum(i.n_chains for i in group),
            qoe={
                "clients_hit": clients_hit,
                "totals": totals,
                "top": top[:10],
                "members": [
                    {"shard": i.shard, "id": i.id, "trigger_t": i.trigger_t}
                    for i in group
                ],
            },
            excerpt=excerpt,
        ))
    return merged


# ----------------------------------------------------------------------
# Plain sequences
# ----------------------------------------------------------------------
def merge_failovers(
    shard_latencies: Iterable[Sequence[float]],
) -> List[float]:
    """All shards' failover latencies, sorted (order-independent)."""
    merged: List[float] = []
    for latencies in shard_latencies:
        merged.extend(float(value) for value in latencies)
    return sorted(merged)
