"""Conservative time-windowed synchronization across shards.

Shared-nothing shards never look at each other.  The windowed mode
adds the coupling the paper's service actually has — a shared
server-group boundary — conservatively: every shard advances its
simulator exactly one *lookahead window*, then barriers; the
coordinator merges each shard's boundary report into a global digest
and hands it back with the next window's go-ahead.  A report produced
in window *k* is therefore visible to every shard at the start of
window *k+1* — one window of lag, which is safe exactly when the
lookahead does not exceed the minimum latency of the boundary links
(no simulated cross-shard effect can propagate faster than the
slowest-case-fastest link).  :func:`min_boundary_lookahead` computes
that bound from the shared links' parameters.

Two properties make this mode what the scale work needs:

* **Bit-determinism given seed + shard map.**  The barrier serializes
  all cross-shard visibility onto the window grid, so OS scheduling
  cannot reorder anything observable.  Chunked ``run_until`` advances
  are event-for-event identical to one straight run (the kernel's
  early-exit contract), so windowing itself perturbs nothing —
  ``tests/shard/test_sync_golden.py`` pins a windowed run against a
  straight run and against the single-process kernel on a golden
  config.
* **Worker-process isolation.**  Each shard lives in its own spawned
  process behind a pipe; the in-line variant (``inline=True``) drives
  the identical protocol over local objects for tests and single-core
  fallbacks.

A shard participates through four duck-typed methods::

    shard.step(target_t)     # advance the local simulator to target_t
    shard.boundary() -> dict # picklable report at the barrier
    shard.absorb(digest)     # fold the previous window's global digest
    shard.finish() -> dict   # picklable final result

The digest currently carries the merged load facts (events, frames,
per-shard reports); capacity-coupled admission policies plug in by
reading it in ``absorb`` — the conservative lag is already correct.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.shard.runner import ShardError, ensure_picklable, spawn_context


def min_boundary_lookahead(*link_params) -> float:
    """The safe lookahead for a set of shared boundary links.

    Conservative synchronization is exact as long as no shard runs
    further ahead than the fastest path a cross-shard effect could
    take — the minimum one-way delay over the boundary links.
    """
    delays = [float(params.delay_s) for params in link_params]
    if not delays:
        raise ShardError("no boundary links to derive a lookahead from")
    lookahead = min(delays)
    if lookahead <= 0:
        raise ShardError(
            "boundary links with zero latency admit no conservative "
            "lookahead; pass an explicit window instead"
        )
    return lookahead


def merge_boundary(window: int, end_t: float, reports: Sequence[Dict]) -> Dict:
    """Fold per-shard boundary reports into the global digest.

    Keyed by shard id and summed field-wise — order-independent, like
    every other merge in this package.
    """
    digest: Dict[str, Any] = {
        "window": window,
        "t": end_t,
        "events": 0,
        "frames": 0,
        "shards": {},
    }
    for report in reports:
        shard_id = report.get("shard")
        digest["events"] += int(report.get("events", 0))
        digest["frames"] += int(report.get("frames", 0))
        digest["shards"][shard_id] = dict(report)
    return digest


def window_targets(duration_s: float, lookahead_s: float) -> List[float]:
    """The barrier grid: window end times up to and including the end."""
    if lookahead_s <= 0:
        raise ShardError(f"lookahead must be positive, got {lookahead_s!r}")
    if duration_s <= 0:
        raise ShardError(f"duration must be positive, got {duration_s!r}")
    targets: List[float] = []
    t = 0.0
    while t < duration_s:
        t = min(duration_s, t + lookahead_s)
        targets.append(t)
    return targets


def _resolve_builder(builder) -> Callable[[Any], Any]:
    if callable(builder):
        return builder
    module_path, _, name = str(builder).partition(":")
    if not name:
        raise ShardError(
            f"builder spec {builder!r} is not 'module:callable' and not "
            "callable"
        )
    return getattr(importlib.import_module(module_path), name)


def _windowed_worker_main(conn, builder, task) -> None:
    """Spawned worker: build the shard, obey the barrier protocol."""
    from repro.sim.gcgate import paused_gc

    try:
        with paused_gc():
            shard = _resolve_builder(builder)(task)
            while True:
                command, payload = conn.recv()
                if command == "advance":
                    target, digest = payload
                    if digest is not None:
                        shard.absorb(digest)
                    shard.step(target)
                    conn.send(("report", shard.boundary()))
                elif command == "finish":
                    conn.send(("result", shard.finish()))
                    break
                else:  # pragma: no cover - protocol misuse
                    raise ShardError(f"unknown command {command!r}")
    except Exception as exc:  # surface the failure to the coordinator
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            raise
    finally:
        conn.close()


def run_windowed(
    tasks: Sequence[Any],
    builder,
    lookahead_s: float,
    duration_s: float,
    inline: bool = False,
) -> Tuple[List[Dict], List[Dict]]:
    """Run every shard under the window-barrier protocol.

    Returns ``(results, digests)``: per-shard final results in shard
    order, and the global digest of every window.  ``builder`` is an
    importable top-level callable (or a ``"module:callable"`` string)
    mapping a task to a shard object; one worker process per shard
    (``inline=True`` keeps everything in-process, same protocol).
    """
    builder_fn = _resolve_builder(builder)
    ensure_picklable(
        builder, f"windowed builder {getattr(builder, '__name__', builder)!r}"
    )
    for index, task in enumerate(tasks):
        ensure_picklable(task, f"task {index}")
    targets = window_targets(duration_s, lookahead_s)

    if inline:
        shards = [builder_fn(task) for task in tasks]
        digests: List[Dict] = []
        digest: Optional[Dict] = None
        for window, target in enumerate(targets):
            reports = []
            for shard in shards:
                if digest is not None:
                    shard.absorb(digest)
                shard.step(target)
                reports.append(shard.boundary())
            digest = merge_boundary(window, target, reports)
            digests.append(digest)
        return [shard.finish() for shard in shards], digests

    context = spawn_context()
    connections = []
    processes = []
    try:
        for task in tasks:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_windowed_worker_main,
                args=(child_conn, builder, task),
            )
            process.start()
            child_conn.close()
            connections.append(parent_conn)
            processes.append(process)

        digests = []
        digest = None
        for window, target in enumerate(targets):
            for conn in connections:
                conn.send(("advance", (target, digest)))
            reports = [_receive(conn, "report") for conn in connections]
            digest = merge_boundary(window, target, reports)
            digests.append(digest)
        for conn in connections:
            conn.send(("finish", None))
        results = [_receive(conn, "result") for conn in connections]
        return results, digests
    finally:
        for conn in connections:
            conn.close()
        for process in processes:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join()


def _receive(conn, expected: str):
    kind, payload = conn.recv()
    if kind == "error":
        raise ShardError(f"windowed shard worker failed: {payload}")
    if kind != expected:  # pragma: no cover - protocol misuse
        raise ShardError(f"expected {expected!r} from worker, got {kind!r}")
    return payload
