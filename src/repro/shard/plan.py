"""Shard maps: who simulates what, under which derived seed.

A :class:`ShardPlan` is the complete, picklable description of how one
logical run splits across workers: the shard count, the base seed, and
the derived per-shard seeds.  The seed derivation mirrors the scenario
matrix's cell convention exactly — ``crc32(f"{seed}:{shard_id}")``
masked to 31 bits — so both subsystems share one content-addressed,
platform-independent rule (never Python's randomized ``hash``).

Determinism contract: everything a worker does is a pure function of
its :class:`ShardTask` (shard id, derived seed, population share,
params).  Two runs with the same plan produce byte-identical per-shard
results on any machine, and the merge layer
(:mod:`repro.shard.merge`) is order-independent, so the merged result
is independent of worker scheduling too.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.errors import ReproError


def shard_seed(seed: int, shard_id: int) -> int:
    """Content-addressed per-shard seed (the matrix-cell convention)."""
    digest = zlib.crc32(f"{seed}:{shard_id}".encode("utf-8"))
    return digest & 0x7FFFFFFF


@dataclass(frozen=True)
class ShardTask:
    """One worker's complete, picklable work order."""

    shard_id: int
    n_shards: int
    seed: int  # this shard's derived seed, not the base seed
    n_viewers: int = 0
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ShardPlan:
    """How one logical run splits across ``n_shards`` workers."""

    n_shards: int
    seed: int

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ReproError(
                f"a shard plan needs at least one shard, got {self.n_shards}"
            )

    def shard_seed(self, shard_id: int) -> int:
        if not 0 <= shard_id < self.n_shards:
            raise ReproError(
                f"shard id {shard_id} outside plan of {self.n_shards}"
            )
        return shard_seed(self.seed, shard_id)

    def split(self, total: int) -> List[int]:
        """Balanced population split: every shard gets ``total // n``
        viewers and the first ``total % n`` shards one extra, so shard
        loads differ by at most one viewer and the split is independent
        of anything but (total, n_shards)."""
        base, extra = divmod(total, self.n_shards)
        return [
            base + (1 if shard_id < extra else 0)
            for shard_id in range(self.n_shards)
        ]

    def tasks(
        self, total_viewers: int = 0, params: Dict[str, Any] = None
    ) -> List[ShardTask]:
        """The per-worker work orders for a ``total_viewers`` run."""
        shares = self.split(total_viewers)
        return [
            ShardTask(
                shard_id=shard_id,
                n_shards=self.n_shards,
                seed=self.shard_seed(shard_id),
                n_viewers=shares[shard_id],
                params=dict(params or {}),
            )
            for shard_id in range(self.n_shards)
        ]
