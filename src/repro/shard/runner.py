"""The spawn-safe worker pool behind every sharded run.

All process fan-out in the reproduction goes through this module, with
one set of rules:

* **Spawn, explicitly.**  Workers always start from
  ``multiprocessing.get_context("spawn")`` — macOS/Windows semantics on
  every platform — so a run can never silently depend on fork-inherited
  globals (RNG state, telemetry buses, open deployments).  Everything a
  worker needs must arrive pickled through its task.
* **Fail loud on unpicklable work.**  Task payloads and worker
  functions are test-pickled *before* any process starts; a lambda, a
  bound method or a live observer object fails immediately with an
  error that says what to do (pass importable top-level callables and
  plain-data tasks), instead of a mid-pool ``PicklingError``
  stacktrace.
* **Results come back in task order**, regardless of which worker
  finished first — merge layers rely on keyed/summed folds for order
  independence, but deterministic output order keeps artifacts and
  logs byte-stable too.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import ReproError


class ShardError(ReproError):
    """A sharded run that cannot start or finish coherently."""


def spawn_context():
    """The explicit spawn context every sharded run uses."""
    return multiprocessing.get_context("spawn")


def default_workers() -> int:
    """One worker per core (the shard-per-core provisioning rule)."""
    return max(1, os.cpu_count() or 1)


def ensure_picklable(value: Any, what: str) -> None:
    """Raise a clear :class:`ShardError` if ``value`` cannot cross a
    spawn boundary.

    Spawned workers receive their work by pickle; anything carrying
    live simulation state — observers, deployments, closures — must
    stay out of task payloads and be (re)constructed inside the worker
    from plain data instead.
    """
    try:
        pickle.dumps(value)
    except Exception as exc:
        raise ShardError(
            f"{what} is not picklable under the spawn start method: "
            f"{exc}.  Sharded runs construct simulation state inside "
            "each worker; pass importable top-level callables and "
            "plain-data tasks (e.g. an observer *factory* by module "
            "path), never live objects."
        ) from None


def map_tasks(
    worker: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: Optional[int] = None,
    inline: bool = False,
) -> List[Any]:
    """Run ``worker(task)`` for every task; results in task order.

    ``workers`` caps the process pool (default: one per core); the
    pool always uses the spawn start method.  ``inline=True`` runs the
    tasks sequentially in this process — same code path semantics, no
    process cost — which tests and single-core fallbacks use.  Tasks
    and the worker are validated picklable either way, so an inline run
    proves the spawn run would have been legal.
    """
    ensure_picklable(worker, f"worker {getattr(worker, '__name__', worker)!r}")
    for index, task in enumerate(tasks):
        ensure_picklable(task, f"task {index}")
    if inline or len(tasks) == 0:
        return [worker(task) for task in tasks]
    n_workers = workers if workers is not None else default_workers()
    n_workers = max(1, min(int(n_workers), len(tasks)))
    with ProcessPoolExecutor(
        max_workers=n_workers, mp_context=spawn_context()
    ) as pool:
        try:
            return list(pool.map(worker, tasks))
        except Exception as exc:
            raise ShardError(
                f"sharded worker failed: {exc!r}"
            ) from exc


def run_shards(
    tasks: Sequence[Any],
    worker: Callable[[Any], Any],
    workers: Optional[int] = None,
    inline: bool = False,
) -> List[Any]:
    """Shared-nothing mode: every shard runs to completion independently.

    A thin, intention-revealing wrapper over :func:`map_tasks` for
    :class:`~repro.shard.plan.ShardTask` lists.
    """
    return map_tasks(worker, tasks, workers=workers, inline=inline)
