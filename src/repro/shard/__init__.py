"""Sharded parallel simulation: one deployment, many worker processes.

One Python process caps the reproduction's scale no matter how cheap
the per-viewer math gets (PR 5's flyweight rows hit ~100k viewers in a
single core).  This package exploits the structure the paper's service
already has — clients of different movie groups interact only through
shared links and the server group — to partition a run across
``multiprocessing`` workers, one shard per core, spawn-safe by
construction.

Two modes:

* **shared-nothing** (:func:`repro.shard.runner.run_shards`):
  independent head-ends, one per worker, each with a deterministic
  per-shard seed (``crc32(f"{seed}:{shard_id}")``, mirroring the
  scenario-matrix cell convention) and merged telemetry — QoE
  scorecards, SLO verdicts and metric snapshots fold together
  order-independently (:mod:`repro.shard.merge`).  This is what lets
  the scale rig publish million-viewer numbers.
* **windowed** (:func:`repro.shard.sync.run_windowed`): conservative
  time-windowed synchronization — every shard advances exactly one
  lookahead window (= the minimum link latency of the shared boundary)
  then barriers on a merged boundary digest before the next.  The
  barrier makes the run bit-deterministic given seed + shard map
  regardless of OS scheduling, and window boundaries provably do not
  perturb any shard (chunked ``run_until`` is event-for-event identical
  to a straight run).

The same worker pool powers the scenario matrix
(:func:`repro.experiments.matrix.run_matrix` with ``workers=N``) so
independent cells execute in parallel with byte-identical verdicts.
"""

from repro.shard.merge import (
    ScoreHistogram,
    merge_metric_snapshots,
    merge_scorecards,
    merge_slo_windows,
    slo_summary_from_windows,
)
from repro.shard.plan import ShardPlan, ShardTask, shard_seed
from repro.shard.runner import ShardError, map_tasks, run_shards
from repro.shard.sync import run_windowed

__all__ = [
    "ScoreHistogram",
    "ShardError",
    "ShardPlan",
    "ShardTask",
    "map_tasks",
    "merge_metric_snapshots",
    "merge_scorecards",
    "merge_slo_windows",
    "run_shards",
    "run_windowed",
    "shard_seed",
    "slo_summary_from_windows",
]
