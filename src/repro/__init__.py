"""repro — a reproduction of *Fault Tolerant Video on Demand Services*
(Tal Anker, Danny Dolev, Idit Keidar; ICDCS 1999).

A fault-tolerant, distributed video-on-demand service built on a group
communication substrate, running on a deterministic discrete-event
network simulator.  Quickstart::

    from repro import Simulator, build_lan, Movie, MovieCatalog, Deployment

    sim = Simulator(seed=1)
    topology = build_lan(sim, n_hosts=5)
    catalog = MovieCatalog([Movie.synthetic("clip", duration_s=120)])
    deploy = Deployment(topology, catalog, server_nodes=[0, 1])
    client = deploy.attach_client(4)
    client.request_movie("clip")
    deploy.controller.crash_server_at(40.0, "server0")
    sim.run_until(130.0)
    print(client.skipped_total, client.late_total)

Observability flows through :mod:`repro.telemetry` — subscribe to
``sim.telemetry`` (or attach a
:class:`~repro.telemetry.export.JsonlExporter`) before the run to watch
every layer's typed events.  See DESIGN.md for the architecture,
docs/TELEMETRY.md for the event taxonomy, and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from repro.client.player import ClientConfig, ClientStats, VoDClient
from repro.gcs.causal import CausalGroup
from repro.gcs.domain import GcsDomain
from repro.gcs.endpoint import GcsEndpoint, GroupHandle, GroupListener
from repro.gcs.total_order import TotalOrderGroup
from repro.gcs.view import ProcessId, View
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.qos import QosManager
from repro.net.topologies import Topology, build_lan, build_wan
from repro.server.server import ServerConfig, VoDServer
from repro.service.controller import ScenarioController
from repro.service.deployment import Deployment
from repro.sim.core import Simulator
from repro.telemetry import Span, Telemetry, probe

__version__ = "1.0.0"

__all__ = [
    "CausalGroup",
    "ClientConfig",
    "ClientStats",
    "Deployment",
    "GcsDomain",
    "GcsEndpoint",
    "GroupHandle",
    "GroupListener",
    "Movie",
    "MovieCatalog",
    "ProcessId",
    "QosManager",
    "ScenarioController",
    "ServerConfig",
    "Simulator",
    "Span",
    "Telemetry",
    "Topology",
    "TotalOrderGroup",
    "View",
    "VoDClient",
    "VoDServer",
    "__version__",
    "build_lan",
    "build_wan",
    "probe",
]
