"""Fault-injection utilities for tests and experiments.

The regression suite repeatedly needs surgical faults — "drop exactly
the next ViewCommit", "flap this link five times", "crash whichever
server serves this client" — beyond the probabilistic loss the link
model provides.  These helpers make such scripts one-liners and are
part of the public API so downstream users can test their own
extensions the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.net.network import Network
from repro.net.packet import Datagram
from repro.sim.core import Simulator

Predicate = Callable[[Datagram], bool]


def payload_type_is(*types: type) -> Predicate:
    """Match datagrams whose payload is one of ``types``."""

    def predicate(datagram: Datagram) -> bool:
        return isinstance(datagram.payload, types)

    return predicate


@dataclass
class MessageDropper:
    """Drop datagrams matching a predicate on one link direction.

    Parameters
    ----------
    network, node_a, node_b:
        The link and the transmit direction (``node_a`` sends).
    predicate:
        Which datagrams to drop (default: all).
    max_drops:
        Stop dropping after this many (None = forever).

    Use :meth:`install` / :meth:`remove`; dropped datagrams are recorded
    in :attr:`dropped` for assertions.
    """

    network: Network
    node_a: int
    node_b: int
    predicate: Optional[Predicate] = None
    max_drops: Optional[int] = 1
    dropped: List[Datagram] = field(default_factory=list)

    def install(self) -> "MessageDropper":
        link = self.network.link(self.node_a, self.node_b)
        direction = link.direction(self.node_a)
        self._direction = direction
        self._original = direction.transmit

        def dropping_transmit(datagram, deliver, guaranteed=False):
            exhausted = (
                self.max_drops is not None
                and len(self.dropped) >= self.max_drops
            )
            matches = self.predicate is None or self.predicate(datagram)
            if matches and not exhausted:
                self.dropped.append(datagram)
                return
            self._original(datagram, deliver, guaranteed)

        direction.transmit = dropping_transmit
        return self

    def remove(self) -> None:
        if getattr(self, "_direction", None) is not None:
            self._direction.transmit = self._original
            self._direction = None


def flap_link(
    sim: Simulator,
    network: Network,
    node_a: int,
    node_b: int,
    start_s: float,
    flaps: int = 3,
    period_s: float = 1.0,
) -> None:
    """Schedule ``flaps`` down/up cycles of a link."""
    for cycle in range(flaps):
        down_at = start_s + cycle * 2 * period_s
        sim.call_at(down_at, network.set_link_state, node_a, node_b, False)
        sim.call_at(
            down_at + period_s, network.set_link_state, node_a, node_b, True
        )


def crash_serving_server(deployment: Any, client: Any) -> Optional[Any]:
    """Crash whichever live server currently serves ``client``.

    Returns the crashed server (or None if nobody serves the client) —
    the move every failover test needs.
    """
    serving = client.serving_server
    for server in deployment.live_servers():
        if serving is not None and server.process == serving:
            server.crash()
            return server
    for server in deployment.live_servers():
        if client.process in server.sessions:
            server.crash()
            return server
    return None
