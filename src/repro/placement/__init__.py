"""Content placement as a first-class subsystem.

Scenarios declare a catalog plus a strategy; the replica map — which
server stores which title, fully or prefix-only — becomes **derived
state** (:class:`PlacementPlan`) instead of hand-authored config.  See
docs/PLACEMENT.md for the strategy menu, the rebalancer's migration
semantics, and the ``placement.*`` telemetry vocabulary.
"""

from repro.placement.plan import (
    PlacementContext,
    PlacementPlan,
    ServerProfile,
    build_zipf_catalog,
    plan_availability,
    surviving_availability,
    title_availability,
)
from repro.placement.rebalancer import Rebalancer
from repro.placement.strategies import (
    STRATEGIES,
    MarkovAvailability,
    PlacementStrategy,
    PopularityProportional,
    PrefixPlacement,
    StaticKWay,
    StaticPlacement,
    make_strategy,
)

__all__ = [
    "MarkovAvailability",
    "PlacementContext",
    "PlacementPlan",
    "PlacementStrategy",
    "PopularityProportional",
    "PrefixPlacement",
    "Rebalancer",
    "STRATEGIES",
    "ServerProfile",
    "StaticKWay",
    "StaticPlacement",
    "build_zipf_catalog",
    "make_strategy",
    "plan_availability",
    "surviving_availability",
    "title_availability",
]
