"""The placement data model: who stores which titles, and how much.

A :class:`PlacementPlan` is the *derived* replica map of a deployment:
scenarios declare a catalog plus a strategy (see
:mod:`repro.placement.strategies`) and the plan — title -> replica set,
with optional prefix-only entries — falls out.  The plan is pure data:
building one touches no simulator state, so strategies can be compared
offline (storage cost, analytic availability) before a single frame is
streamed.  ``plan.apply(catalog)`` materialises it onto a
:class:`~repro.media.catalog.MovieCatalog`, and
:meth:`~repro.service.deployment.Deployment.from_placement` builds a
running service from it.

The model distinguishes **full replicas** from **prefix replicas**
(servers holding only the first ``prefix_s`` seconds of a title — the
proxy/edge caching of "An Optimal Prefix Replication Strategy for VoD
Services").  Only full replicas count toward the paper's "replicated k
times tolerates k-1 failures" contract; prefix replicas absorb connect
floods and hand sessions off mid-stream (see docs/PLACEMENT.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ServiceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.media.catalog import MovieCatalog


@dataclass(frozen=True)
class ServerProfile:
    """What a strategy knows about one (actual or planned) server.

    ``fail_rate`` / ``repair_rate`` parameterise the two-state Markov
    chain (up -> down at ``fail_rate``, down -> up at ``repair_rate``,
    both per hour) whose steady state is the server's availability.
    ``domain`` names the correlated-failure domain (rack, site, power
    feed): a correlated crash takes down a whole domain at once, so
    availability-driven strategies spread replicas across domains.
    ``capacity_s`` bounds stored video seconds (None = unbounded);
    ``edge`` marks prefix-cache candidates.
    """

    name: str
    domain: str = "default"
    fail_rate: float = 0.01
    repair_rate: float = 1.0
    capacity_s: Optional[float] = None
    edge: bool = False

    @property
    def availability(self) -> float:
        """Steady-state P(up) of the up/down Markov chain."""
        total = self.fail_rate + self.repair_rate
        if total <= 0:
            return 1.0
        return self.repair_rate / total


@dataclass
class PlacementContext:
    """Everything a strategy needs to build a plan.

    ``titles`` is the catalog in **popularity rank order** (rank 1
    first); it defaults to ``catalog.titles()`` — sorted order — which
    matches rank for catalogs built by :func:`build_zipf_catalog`
    (zero-padded names).  ``alpha`` is the Zipf exponent the request
    mix is expected to follow; ``k`` is the fault-tolerance floor every
    strategy must honour where capacity allows.
    """

    catalog: "MovieCatalog"
    servers: Sequence[ServerProfile]
    k: int = 2
    alpha: float = 0.8
    titles: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        if self.titles is None:
            self.titles = self.catalog.titles()
        if not self.titles:
            raise ServiceError("placement context has an empty catalog")
        if not self.servers:
            raise ServiceError("placement context has no servers")
        if not 1 <= self.k:
            raise ServiceError(f"need k >= 1, got k={self.k}")
        names = [profile.name for profile in self.servers]
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate server names in context: {names}")

    def shares(self) -> Dict[str, float]:
        """Analytic Zipf request share per title (rank order)."""
        weights = [
            1.0 / (rank ** self.alpha)
            for rank in range(1, len(self.titles) + 1)
        ]
        total = sum(weights)
        return {
            title: weight / total
            for title, weight in zip(self.titles, weights)
        }

    def duration_of(self, title: str) -> float:
        return self.catalog.movie(title).duration_s

    def profile(self, name: str) -> ServerProfile:
        for profile in self.servers:
            if profile.name == name:
                return profile
        raise ServiceError(f"no server profile named {name!r}")


@dataclass
class PlacementPlan:
    """title -> {server name -> prefix seconds (None = full copy)}.

    The canonical derived replica map.  Use :meth:`apply` to write it
    onto a catalog, :meth:`from_catalog` to capture a catalog's current
    placement (the rebalancer diffs two plans), and the query helpers
    for storage/availability accounting.
    """

    entries: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)
    strategy: str = "static"
    k: int = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def static(
        cls,
        assignments: Mapping[str, Iterable[str]],
        strategy: str = "static",
        k: int = 1,
    ) -> "PlacementPlan":
        """An explicit hand-authored title -> full-replica-set map."""
        entries = {
            title: {server: None for server in servers}
            for title, servers in assignments.items()
        }
        return cls(entries=entries, strategy=strategy, k=k)

    @classmethod
    def from_catalog(
        cls, catalog: "MovieCatalog", strategy: str = "captured"
    ) -> "PlacementPlan":
        """Capture the catalog's current replica map as a plan."""
        entries: Dict[str, Dict[str, Optional[float]]] = {}
        for title in catalog.titles():
            holders: Dict[str, Optional[float]] = {}
            for server in sorted(catalog.replicas(title)):
                holders[server] = catalog.prefix_of(title, server)
            entries[title] = holders
        return cls(entries=entries, strategy=strategy)

    def place(
        self, title: str, server: str, prefix_s: Optional[float] = None
    ) -> None:
        self.entries.setdefault(title, {})[server] = prefix_s

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def titles(self) -> List[str]:
        return sorted(self.entries)

    def servers(self) -> List[str]:
        names = set()
        for holders in self.entries.values():
            names.update(holders)
        return sorted(names)

    def replicas(self, title: str) -> List[str]:
        """Servers holding a **full** copy of ``title`` (sorted)."""
        holders = self.entries.get(title, {})
        return sorted(
            server for server, prefix in holders.items() if prefix is None
        )

    def prefix_holders(self, title: str) -> Dict[str, float]:
        holders = self.entries.get(title, {})
        return {
            server: prefix
            for server, prefix in holders.items()
            if prefix is not None
        }

    def replication_degree(self, title: str) -> int:
        return len(self.replicas(title))

    def min_replication(self) -> int:
        if not self.entries:
            return 0
        return min(self.replication_degree(title) for title in self.entries)

    def movies_for(self, server: str) -> Optional[List[Tuple[str, Optional[float]]]]:
        """``(title, prefix_s)`` pairs stored at ``server`` (sorted),
        or None when the plan does not know the server at all — the
        deployment then falls back to its ``replicate_all`` default."""
        if server not in self.servers():
            return None
        return sorted(
            (title, holders[server])
            for title, holders in self.entries.items()
            if server in holders
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def storage_s(self, catalog: "MovieCatalog") -> Dict[str, float]:
        """Stored video seconds per server (prefixes count partially)."""
        stored: Dict[str, float] = {}
        for title, holders in self.entries.items():
            duration = catalog.movie(title).duration_s
            for server, prefix in holders.items():
                seconds = duration if prefix is None else min(prefix, duration)
                stored[server] = stored.get(server, 0.0) + seconds
        return stored

    def storage_copies(self, catalog: "MovieCatalog") -> float:
        """Total storage as a multiple of one full catalog copy."""
        catalog_s = sum(
            catalog.movie(title).duration_s for title in self.entries
        )
        if catalog_s <= 0:
            return 0.0
        return sum(self.storage_s(catalog).values()) / catalog_s

    def validate(self, catalog: "MovieCatalog") -> None:
        """Raise :class:`ServiceError` unless every catalog title has at
        least one full replica and every placed title exists."""
        for title in self.entries:
            if title not in catalog:
                raise ServiceError(f"plan places unknown title {title!r}")
        for title in catalog.titles():
            if not self.replicas(title):
                raise ServiceError(
                    f"plan leaves {title!r} without a full replica"
                )

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def apply(self, catalog: "MovieCatalog") -> None:
        """Write the plan's replica map onto ``catalog``."""
        for title, holders in self.entries.items():
            for server, prefix in holders.items():
                catalog.place_replica(title, server, prefix_s=prefix)

    def describe(self) -> List[str]:
        lines = [f"plan[{self.strategy}] k={self.k}"]
        for title in self.titles():
            full = ",".join(self.replicas(title))
            prefixes = self.prefix_holders(title)
            extra = (
                " prefix=" + ",".join(
                    f"{server}:{seconds:.0f}s"
                    for server, seconds in sorted(prefixes.items())
                )
                if prefixes
                else ""
            )
            lines.append(f"  {title}: [{full}]{extra}")
        return lines


# ----------------------------------------------------------------------
# Analytic availability
# ----------------------------------------------------------------------
def title_availability(
    plan: PlacementPlan, title: str, profiles: Mapping[str, ServerProfile]
) -> float:
    """P(at least one full replica up), servers independent."""
    unavailable = 1.0
    for server in plan.replicas(title):
        profile = profiles.get(server)
        availability = profile.availability if profile is not None else 1.0
        unavailable *= 1.0 - availability
    return 1.0 - unavailable if plan.replicas(title) else 0.0


def plan_availability(plan: PlacementPlan, ctx: PlacementContext) -> float:
    """Popularity-weighted analytic availability of the whole plan."""
    profiles = {profile.name: profile for profile in ctx.servers}
    shares = ctx.shares()
    return sum(
        shares.get(title, 0.0) * title_availability(plan, title, profiles)
        for title in plan.titles()
    )


def surviving_availability(
    plan: PlacementPlan,
    ctx: PlacementContext,
    down_servers: Iterable[str],
) -> float:
    """Popularity-weighted fraction of titles that still have a live
    full replica once ``down_servers`` are all dead — the deterministic
    "availability under a correlated crash" of the placement
    experiment."""
    down = set(down_servers)
    shares = ctx.shares()
    total = 0.0
    for title in plan.titles():
        if any(server not in down for server in plan.replicas(title)):
            total += shares.get(title, 0.0)
    return total


# ----------------------------------------------------------------------
# Catalog building
# ----------------------------------------------------------------------
def build_zipf_catalog(
    n_titles: int,
    duration_s: float = 120.0,
    fps: int = 30,
    name_format: str = "title{rank:04d}",
) -> "MovieCatalog":
    """A catalog of ``n_titles`` synthetic movies whose sorted title
    order equals popularity rank order (zero-padded names), so
    :class:`~repro.workloads.popularity.ZipfCatalogSampler` over
    ``catalog.titles()`` draws rank-1 most often."""
    from repro.media.catalog import MovieCatalog
    from repro.media.movie import Movie

    if n_titles < 1:
        raise ServiceError(f"need at least one title, got {n_titles}")
    return MovieCatalog(
        Movie.synthetic(
            name_format.format(rank=rank), duration_s=duration_s, fps=fps
        )
        for rank in range(1, n_titles + 1)
    )
