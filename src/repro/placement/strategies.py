"""Pluggable replication strategies: ``build(ctx) -> PlacementPlan``.

The menu the experiments compare:

* :class:`StaticPlacement` — an explicit hand-authored map (what the
  deprecated ``Deployment.add_server(movies=...)`` delegates to).
* :class:`StaticKWay` — the seed's round-robin k-way spread, now as a
  strategy.  Ignores popularity and failure domains, which is exactly
  why it loses the correlated-crash comparison.
* :class:`PopularityProportional` — replica counts scale with Zipf
  share: the head of the catalog gets ``max_k`` copies, the tail the
  ``k`` floor.  Counts are monotone non-increasing in rank (property
  tested).
* :class:`MarkovAvailability` — per-server steady-state availability
  from the two-state Markov chain (PAPERS.md: "A Reliable Replication
  Strategy for VoD System using Markov Chain"); replicas are added
  greedily, **never two in the same failure domain before all domains
  are used**, until the title's analytic availability target is met.
* :class:`PrefixPlacement` — core servers hold k-way full copies,
  designated edge servers hold only the first ``prefix_s`` seconds of
  every title (PAPERS.md: "An Optimal Prefix Replication Strategy for
  VoD Services"); sessions hand off mid-stream (see
  ``repro.server.server``).

All strategies are deterministic (sorted tie-breaking, no RNG), honour
per-server ``capacity_s`` limits, and guarantee at least ``ctx.k`` full
replicas per title whenever capacity allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import ServiceError
from repro.placement.plan import PlacementContext, PlacementPlan, ServerProfile


class PlacementStrategy:
    """Base class: subclasses implement :meth:`build`."""

    name = "abstract"

    def build(self, ctx: PlacementContext) -> PlacementPlan:
        raise NotImplementedError


class _CapacityLedger:
    """Tracks remaining storage seconds per server during a build."""

    def __init__(self, servers: Sequence[ServerProfile]) -> None:
        self._remaining: Dict[str, Optional[float]] = {
            profile.name: profile.capacity_s for profile in servers
        }
        self._used: Dict[str, float] = {profile.name: 0.0 for profile in servers}

    def fits(self, server: str, seconds: float) -> bool:
        remaining = self._remaining[server]
        return remaining is None or remaining >= seconds

    def charge(self, server: str, seconds: float) -> None:
        self._used[server] += seconds
        if self._remaining[server] is not None:
            self._remaining[server] -= seconds

    def used(self, server: str) -> float:
        return self._used[server]


def _pick_replicas(
    ctx: PlacementContext,
    ledger: _CapacityLedger,
    candidates: Sequence[ServerProfile],
    duration: float,
    count: int,
) -> List[str]:
    """``count`` least-loaded candidates with room, ties by name."""
    chosen: List[str] = []
    for profile in sorted(
        candidates, key=lambda p: (ledger.used(p.name), p.name)
    ):
        if len(chosen) >= count:
            break
        if ledger.fits(profile.name, duration):
            chosen.append(profile.name)
            ledger.charge(profile.name, duration)
    return chosen


@dataclass
class StaticPlacement(PlacementStrategy):
    """An explicit ``{title: [servers]}`` (or ``{server: [titles]}``
    via :meth:`from_server_movies`) map, verbatim."""

    assignments: Mapping[str, Sequence[str]] = field(default_factory=dict)
    name: str = "static-explicit"

    @classmethod
    def from_server_movies(
        cls, server_movies: Mapping[str, Iterable[str]]
    ) -> "StaticPlacement":
        """Build from the ``add_server(movies=...)`` point of view."""
        assignments: Dict[str, List[str]] = {}
        for server, titles in server_movies.items():
            for title in titles:
                assignments.setdefault(title, []).append(server)
        return cls(assignments=assignments)

    def as_plan(self) -> PlacementPlan:
        return PlacementPlan.static(self.assignments, strategy=self.name)

    def build(self, ctx: PlacementContext) -> PlacementPlan:
        known = {profile.name for profile in ctx.servers}
        for title, servers in self.assignments.items():
            if title not in ctx.catalog:
                raise ServiceError(f"static plan places unknown title {title!r}")
            for server in servers:
                if server not in known:
                    raise ServiceError(
                        f"static plan names unknown server {server!r}"
                    )
        plan = self.as_plan()
        plan.k = ctx.k
        return plan


@dataclass
class StaticKWay(PlacementStrategy):
    """Round-robin k-way spread: title ``i`` goes to servers
    ``i..i+k-1`` (mod n) in sorted server order.  ``k=None`` takes the
    context's fault-tolerance floor; ``k=len(servers)`` is the seed's
    full replication."""

    k: Optional[int] = None
    name: str = "static"

    def build(self, ctx: PlacementContext) -> PlacementPlan:
        servers = sorted(ctx.servers, key=lambda p: p.name)
        k = ctx.k if self.k is None else self.k
        if not 1 <= k <= len(servers):
            raise ServiceError(
                f"need 1 <= k <= {len(servers)} servers, got k={k}"
            )
        ledger = _CapacityLedger(servers)
        plan = PlacementPlan(strategy=self.name, k=k)
        for position, title in enumerate(ctx.titles):
            duration = ctx.duration_of(title)
            placed = 0
            # Walk the ring from the title's home position, skipping
            # full servers, until k replicas land (or capacity is out).
            for offset in range(len(servers)):
                if placed >= k:
                    break
                profile = servers[(position + offset) % len(servers)]
                if ledger.fits(profile.name, duration):
                    ledger.charge(profile.name, duration)
                    plan.place(title, profile.name)
                    placed += 1
            if placed == 0:
                raise ServiceError(
                    f"no capacity anywhere for {title!r}"
                )
        return plan


@dataclass
class PopularityProportional(PlacementStrategy):
    """Replica counts proportional to Zipf share.

    Rank ``r`` gets ``k + round((max_k - k) * w_r / w_1)`` full
    replicas, where ``w_r = r**-alpha`` — a monotone non-increasing
    function of rank, so a hotter title never has fewer copies than a
    colder one.  Replicas land on the least-loaded servers
    (storage-wise) for balance.
    """

    max_k: Optional[int] = None
    name: str = "popularity"

    def replica_counts(self, ctx: PlacementContext) -> Dict[str, int]:
        n_servers = len(ctx.servers)
        max_k = n_servers if self.max_k is None else min(self.max_k, n_servers)
        if max_k < ctx.k:
            raise ServiceError(f"max_k={max_k} below the k={ctx.k} floor")
        span = max_k - ctx.k
        counts: Dict[str, int] = {}
        for rank, title in enumerate(ctx.titles, start=1):
            weight = rank ** (-ctx.alpha)  # w_1 == 1.0
            counts[title] = ctx.k + int(round(span * weight))
        return counts

    def build(self, ctx: PlacementContext) -> PlacementPlan:
        counts = self.replica_counts(ctx)
        ledger = _CapacityLedger(ctx.servers)
        plan = PlacementPlan(strategy=self.name, k=ctx.k)
        for title in ctx.titles:
            duration = ctx.duration_of(title)
            chosen = _pick_replicas(
                ctx, ledger, ctx.servers, duration, counts[title]
            )
            if not chosen:
                raise ServiceError(f"no capacity anywhere for {title!r}")
            for server in chosen:
                plan.place(title, server)
        return plan


@dataclass
class MarkovAvailability(PlacementStrategy):
    """Availability-driven replication with failure-domain diversity.

    Each server's steady-state availability ``a = repair/(fail+repair)``
    comes from its two-state Markov chain.  For each title (in rank
    order) replicas are added greedily — preferring servers in *unused*
    failure domains, then highest availability, then lowest storage
    load — until ``P(all replicas down) = prod(1 - a_s)`` drops below
    the title's unavailability budget and the ``k`` floor is met.

    Hot titles get tighter budgets: the base ``target`` is scaled by
    the title's Zipf share relative to the uniform share, so the head
    of the catalog picks up extra replicas.  The domain-first ordering
    is what beats :class:`StaticKWay` under a correlated (whole-rack)
    crash: k-way happily lands both copies of some titles in one rack.
    """

    target: float = 0.999
    max_k: Optional[int] = None
    name: str = "markov"

    def required_unavailability(
        self, ctx: PlacementContext, title: str
    ) -> float:
        shares = ctx.shares()
        uniform = 1.0 / len(ctx.titles)
        boost = max(1.0, shares[title] / uniform)
        return (1.0 - self.target) / boost

    def build(self, ctx: PlacementContext) -> PlacementPlan:
        ledger = _CapacityLedger(ctx.servers)
        plan = PlacementPlan(strategy=self.name, k=ctx.k)
        max_k = len(ctx.servers) if self.max_k is None else self.max_k
        for title in ctx.titles:
            duration = ctx.duration_of(title)
            budget = self.required_unavailability(ctx, title)
            chosen: List[str] = []
            used_domains: set = set()
            unavailable = 1.0
            while len(chosen) < max_k:
                candidates = [
                    profile
                    for profile in ctx.servers
                    if profile.name not in chosen
                    and ledger.fits(profile.name, duration)
                ]
                if not candidates:
                    break
                candidates.sort(
                    key=lambda p: (
                        p.domain in used_domains,  # fresh domains first
                        -p.availability,
                        ledger.used(p.name),
                        p.name,
                    )
                )
                profile = candidates[0]
                chosen.append(profile.name)
                used_domains.add(profile.domain)
                ledger.charge(profile.name, duration)
                unavailable *= 1.0 - profile.availability
                if len(chosen) >= ctx.k and unavailable <= budget:
                    break
            if not chosen:
                raise ServiceError(f"no capacity anywhere for {title!r}")
            for server in chosen:
                plan.place(title, server)
        return plan


@dataclass
class PrefixPlacement(PlacementStrategy):
    """Core k-way full copies plus prefix caches on edge servers.

    Servers whose profile has ``edge=True`` store only the first
    ``prefix_s`` seconds of each title (all titles by default; the most
    popular ``head_fraction`` of the catalog otherwise).  Full copies
    go k-way round-robin over the non-edge core.  Edge admission and
    the mid-stream handoff are the server's job — the plan only says
    who stores what.
    """

    prefix_s: float = 60.0
    head_fraction: float = 1.0
    core_k: Optional[int] = None
    name: str = "prefix"

    def build(self, ctx: PlacementContext) -> PlacementPlan:
        edges = [profile for profile in ctx.servers if profile.edge]
        core = [profile for profile in ctx.servers if not profile.edge]
        if not core:
            raise ServiceError("prefix placement needs at least one core server")
        core_k = self.core_k if self.core_k is not None else min(ctx.k, len(core))
        core_ctx = PlacementContext(
            catalog=ctx.catalog,
            servers=core,
            k=min(ctx.k, len(core)),
            alpha=ctx.alpha,
            titles=ctx.titles,
        )
        plan = StaticKWay(k=core_k).build(core_ctx)
        plan.strategy = self.name
        plan.k = core_ctx.k
        ledger = _CapacityLedger(edges)
        head = max(1, int(round(self.head_fraction * len(ctx.titles))))
        for title in list(ctx.titles)[:head]:
            stored = min(self.prefix_s, ctx.duration_of(title))
            for profile in sorted(edges, key=lambda p: p.name):
                if ledger.fits(profile.name, stored):
                    ledger.charge(profile.name, stored)
                    plan.place(title, profile.name, prefix_s=self.prefix_s)
        return plan


#: CLI name -> zero-config strategy factory, for ``repro-vod placement``.
STRATEGIES: Dict[str, type] = {
    "static": StaticKWay,
    "popularity": PopularityProportional,
    "markov": MarkovAvailability,
    "prefix": PrefixPlacement,
}


def make_strategy(name: str, **kwargs: object) -> PlacementStrategy:
    """Instantiate a strategy from its CLI name."""
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise ServiceError(
            f"unknown strategy {name!r}; choose from {sorted(STRATEGIES)}"
        ) from None
    return factory(**kwargs)
