"""Online replica migration over the live service.

The rebalancer moves replicas between running servers **through the
service's own fault-tolerance machinery** rather than beside it: a
migration is "target joins the movie group" (the paper's join-regime
redistribution sheds viewers onto it) followed, once the view has
settled, by "source leaves the movie group" (failure-regime adoption of
the source's remaining viewers, minus the crash-detection latency).
Because both halves are ordinary membership changes, every invariant
the :class:`~repro.faulting.invariants.InvariantChecker` enforces for
crashes — exactly-one adoption, offset continuity, no double delivery —
holds for migrations by construction, and a target that dies mid-copy
simply aborts the drop: the source never stopped serving.

Telemetry: each migration opens a ``placement.migrate`` span (key
``"<title>:<source>-><target>"``) and emits
``placement.migration.start`` / ``.complete`` / ``.abort`` events;
completed durations land in the ``placement.migrate.latency_s``
histogram, so QoE/SLO gates and ``repro-vod trace`` see migrations the
same way they see takeovers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.placement.plan import PlacementPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.deployment import Deployment


class Rebalancer:
    """Copy-then-drop replica migrations on a live :class:`Deployment`."""

    def __init__(
        self, deployment: "Deployment", settle_s: Optional[float] = None
    ) -> None:
        self.deployment = deployment
        self.sim = deployment.sim
        sync = deployment.server_config.sync_interval_s
        # Long enough for the join view to commit, the join-regime
        # redistribution to run, and the assignment settle window
        # (2 sync periods) to expire before the source leaves.
        self.settle_s = settle_s if settle_s is not None else 6.0 * sync
        self.completed: List[Tuple[str, str, str]] = []
        self.aborted: List[Tuple[str, str, str]] = []
        self._active = 0

    @property
    def active(self) -> int:
        """Migrations currently between copy and drop."""
        return self._active

    # ------------------------------------------------------------------
    # One migration
    # ------------------------------------------------------------------
    def migrate(
        self,
        title: str,
        source: str,
        target: str,
        prefix_s: Optional[float] = None,
    ) -> None:
        """Move the ``title`` replica from ``source`` to ``target``.

        The target starts serving immediately (join regime); the source
        drops its copy after :attr:`settle_s`.  If the target is no
        longer running at drop time the migration aborts and the source
        keeps the replica — a mid-migration crash can lose the *copy*,
        never the *title*.  ``prefix_s`` migrates onto a prefix-only
        target (edge cache warm-up)."""
        src = self.deployment.server(source)
        dst = self.deployment.server(target)
        if not src.running:
            raise ServiceError(f"migration source {source!r} is not running")
        if not dst.running:
            raise ServiceError(f"migration target {target!r} is not running")
        if title not in src.movie_states:
            raise ServiceError(f"{source!r} holds no replica of {title!r}")

        key = f"{title}:{source}->{target}"
        tel = self.sim.telemetry
        cause = None
        if tel.active:
            cause = tel.cause
            if cause is None:
                cause = tel.new_cause(f"migration.{key}")
            tel.span(
                "placement.migrate", key=key,
                movie=title, source=source, target=target, cause=cause,
            )
            tel.emit(
                "placement.migration.start",
                movie=title, source=source, target=target, cause=cause,
            )
        self._active += 1
        dst.add_movie(title, prefix_s=prefix_s)
        self.sim.call_after(
            self.settle_s,
            lambda: self._finish(title, source, target, key, cause),
        )

    def _finish(
        self, title: str, source: str, target: str, key: str, cause: Optional[str]
    ) -> None:
        self._active -= 1
        src = self.deployment.server(source)
        dst = self.deployment.server(target)
        tel = self.sim.telemetry
        if not dst.running or title not in dst.movie_states:
            # The target died (or dropped the copy) mid-migration: keep
            # the source replica and call the move off.
            self.aborted.append((title, source, target))
            if tel.active:
                span = tel.open_span("placement.migrate", key=key)
                if span is not None:
                    span.end(outcome="aborted")
                fields = dict(movie=title, source=source, target=target)
                if cause is not None:
                    fields["cause"] = cause
                tel.emit("placement.migration.abort", **fields)
            return
        if src.running and title in src.movie_states:
            src.drop_movie(title)
        else:
            # The source crashed first: its viewers already failed over
            # (possibly onto the target we just warmed) — the migration
            # degenerates to a replica repair and still completes.
            self.deployment.catalog.remove_replica(title, source)
        self.completed.append((title, source, target))
        if tel.active:
            span = tel.open_span("placement.migrate", key=key)
            if span is not None:
                duration = span.end(outcome="completed")
                if duration is not None:
                    tel.metrics.histogram(
                        "placement.migrate.latency_s"
                    ).observe(duration)
            fields = dict(movie=title, source=source, target=target)
            if cause is not None:
                fields["cause"] = cause
            tel.emit("placement.migration.complete", **fields)

    # ------------------------------------------------------------------
    # Replication repair
    # ------------------------------------------------------------------
    def heal(self, k: Optional[int] = None) -> List[Tuple[str, str]]:
        """Restore every title to >= k **full** replicas on live servers.

        After a (correlated) crash some titles are under-replicated or
        dark; this re-creates copies on the least storage-loaded live
        servers via :meth:`VoDServer.add_movie` — the "new movies can be
        added on the fly" path.  Returns the ``(title, server)`` pairs
        added.  ``k`` defaults to the deployment's placement plan floor.
        """
        if k is None:
            plan = getattr(self.deployment, "placement", None)
            k = plan.k if plan is not None else 1
        catalog = self.deployment.catalog
        live = {
            server.name: server for server in self.deployment.live_servers()
        }
        if not live:
            return []
        load: Dict[str, float] = {
            name: sum(
                catalog.movie(t).duration_s for t in catalog.movies_of(name)
            )
            for name in live
        }
        tel = self.sim.telemetry
        additions: List[Tuple[str, str]] = []
        for title in catalog.titles():
            holders = {
                holder
                for holder in catalog.full_replicas(title)
                if holder in live
            }
            candidates = sorted(
                (name for name in live if name not in holders),
                key=lambda name: (load[name], name),
            )
            for name in candidates[: max(0, k - len(holders))]:
                live[name].add_movie(title)
                load[name] += catalog.movie(title).duration_s
                additions.append((title, name))
                if tel.active:
                    tel.emit(
                        "placement.heal", movie=title, server=name,
                        replicas=len(holders) + 1, target_k=k,
                    )
        return additions

    # ------------------------------------------------------------------
    # Plan application
    # ------------------------------------------------------------------
    def apply_plan(self, plan: PlacementPlan) -> Dict[str, int]:
        """Drive the live replica map toward ``plan``.

        Diffs the catalog's current placement against the plan's and,
        per title, pairs one removal with one addition as a
        :meth:`migrate`; leftover additions become :meth:`add_movie`
        calls and leftover removals become delayed drops.  Only live
        servers participate; dead holders are left for :meth:`heal`.
        Returns counts of scheduled operations.
        """
        catalog = self.deployment.catalog
        live = {
            server.name for server in self.deployment.live_servers()
        }
        stats = {"migrations": 0, "additions": 0, "drops": 0}
        for title in plan.titles():
            if title not in catalog:
                continue
            desired = set(plan.replicas(title)) & live
            current = catalog.full_replicas(title) & live
            removals = sorted(current - desired)
            additions = sorted(desired - current)
            while removals and additions:
                self.migrate(title, removals.pop(0), additions.pop(0))
                stats["migrations"] += 1
            for name in additions:
                self.deployment.server(name).add_movie(title)
                stats["additions"] += 1
            for name in removals:
                if len(current) - 1 < 1:
                    continue  # never drop the last live replica
                self.deployment.server(name).drop_movie(title)
                current.discard(name)
                stats["drops"] += 1
        return stats
