"""A Tiger-like striped video cluster (the paper's Section 7 comparison).

Microsoft Tiger [Bolosky et al.] stripes each movie across all servers
of a tightly coupled cluster and mirrors every block on the next server
(declustered mirroring), with a cluster-wide schedule deciding which
server ships which block when.  We model the schedule as an oracle (a
single timer that always knows which servers are alive — an idealized
stand-in for Tiger's distributed schedule, which only makes the baseline
*stronger*), and reproduce its fault-tolerance envelope:

* one server failure: every block still has a live owner (its mirror) —
  playback survives;
* two failures (even non-concurrent): blocks whose primary and mirror
  are both dead are lost every stripe cycle — visible, periodic frame
  loss, regardless of cluster size.

By contrast, the group-communication service replicates whole movies k
ways and tolerates k-1 failures.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.mini_client import MiniClient
from repro.errors import ServiceError
from repro.gcs.view import ProcessId
from repro.media.movie import Movie
from repro.net.address import Endpoint, VIDEO_PORT
from repro.net.network import Network
from repro.net.udp import UdpSocket
from repro.service.protocol import FramePacket
from repro.sim.core import Simulator
from repro.sim.process import Timer


class _StripeServer:
    """One cluster member: a node with a video socket."""

    def __init__(self, sim: Simulator, network: Network, node_id: int, index: int):
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.index = index
        self.socket = UdpSocket(network.node(node_id), VIDEO_PORT)
        self.frames_sent = 0

    @property
    def alive(self) -> bool:
        return self.network.node(self.node_id).alive and not self.socket.closed

    def send(self, packet: FramePacket, client: Endpoint) -> None:
        if not self.alive:
            return
        self.frames_sent += 1
        self.socket.sendto(client, packet, packet.wire_bytes())

    def crash(self) -> None:
        self.network.node(self.node_id).crash()


class StripedCluster:
    """A striped, mirrored VoD cluster streaming one movie to one client."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        movie: Movie,
        server_node_ids: List[int],
        stripe_frames: int = 12,
        decluster: int = 1,
    ) -> None:
        """``decluster`` is Tiger's declustering factor d: each block's
        secondary copy is spread over the next d cubs, so a failed cub's
        load lands on d neighbours (1/d extra each) instead of doubling
        one neighbour."""
        if len(server_node_ids) < 2:
            raise ServiceError("a striped cluster needs at least 2 servers")
        if not 1 <= decluster < len(server_node_ids):
            raise ServiceError(
                f"decluster factor must be in [1, n_servers), got {decluster!r}"
            )
        self.sim = sim
        self.movie = movie
        self.stripe_frames = stripe_frames
        self.decluster = decluster
        self.servers = [
            _StripeServer(sim, network, node_id, index)
            for index, node_id in enumerate(server_node_ids)
        ]
        self._client_endpoint: Optional[Endpoint] = None
        self._position = 1
        self._timer: Optional[Timer] = None
        self.lost_blocks = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def primary_of(self, frame_index: int) -> int:
        return ((frame_index - 1) // self.stripe_frames) % len(self.servers)

    def mirror_of(self, frame_index: int) -> int:
        """The cub holding this block's secondary copy.

        With declustering d, block b of a failed primary p lives on cub
        ``p + 1 + (b mod d)`` — consecutive lost blocks fan out over d
        neighbours instead of hammering one.
        """
        block = (frame_index - 1) // self.stripe_frames
        offset = 1 + (block % self.decluster)
        return (self.primary_of(frame_index) + offset) % len(self.servers)

    def owner_of(self, frame_index: int) -> Optional[_StripeServer]:
        """The live server responsible for the frame, or None if lost."""
        primary = self.servers[self.primary_of(frame_index)]
        if primary.alive:
            return primary
        mirror = self.servers[self.mirror_of(frame_index)]
        if mirror.alive:
            return mirror
        return None

    def secondary_load_shares(self) -> List[float]:
        """Fraction of a dead cub's blocks each survivor would absorb —
        the quantity Tiger's declustering bounds at 1/d."""
        counts = [0] * len(self.servers)
        blocks = (len(self.movie) + self.stripe_frames - 1) // self.stripe_frames
        dead = 0  # analyze the failure of cub 0
        covered = 0
        for block in range(blocks):
            frame = block * self.stripe_frames + 1
            if self.primary_of(frame) != dead:
                continue
            covered += 1
            counts[self.mirror_of(frame)] += 1
        return [count / max(1, covered) for count in counts]

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def start(self, client: MiniClient, lead_s: float = 2.0) -> None:
        """Begin streaming to the client, with a small startup lead.

        Tiger feeds clients slightly ahead of real time to build the
        playout buffer; we model that as a brief 2x-rate lead-in.
        """
        self._client_endpoint = client.endpoint
        self._lead_until = self.sim.now + lead_s
        self._lead_done = False
        self._timer = Timer(
            self.sim, 1.0 / (2 * self.movie.fps), self._tick, start_delay=0.0
        )

    def _tick(self) -> None:
        if self._position > len(self.movie):
            self._timer.cancel()
            return
        frame = self.movie.frame(self._position)
        owner = self.owner_of(frame.index)
        if owner is None:
            self.lost_blocks += 1
        else:
            packet = FramePacket(
                frame=frame,
                epoch=0,
                server=ProcessId(owner.node_id, f"stripe{owner.index}"),
                sent_at=self.sim.now,
            )
            owner.send(packet, self._client_endpoint)
        self._position += 1
        if not self._lead_done and self.sim.now >= self._lead_until:
            # Drop from the 2x lead-in to real-time pacing.
            self._lead_done = True
            self._timer.cancel()
            self._timer = Timer(self.sim, 1.0 / self.movie.fps, self._tick)

    def crash_server(self, index: int) -> None:
        self.servers[index].crash()

    def live_count(self) -> int:
        return sum(1 for server in self.servers if server.alive)


def run_striped_crash(
    n_servers: int = 3,
    kills: int = 1,
    duration_s: float = 90.0,
    seed: int = 31,
):
    """Crash ``kills`` striped servers one by one; measure client loss.

    Returns (client, cluster).  Kills are spaced 15 s apart starting at
    t=30 s — deliberately *not* concurrent, matching the paper's point
    that Tiger fails on two failures "even if the failures are not
    concurrent".
    """
    from repro.net.topologies import build_lan
    from repro.sim.core import Simulator

    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=n_servers + 1)
    movie = Movie.synthetic("feature", duration_s=duration_s)
    cluster = StripedCluster(
        sim,
        topology.network,
        movie,
        [topology.host(i) for i in range(n_servers)],
    )
    client = MiniClient(sim, topology.network, topology.host(n_servers))
    cluster.start(client)
    for kill in range(kills):
        sim.call_at(30.0 + 15.0 * kill, cluster.crash_server, kill)
    sim.run_until(duration_s)
    client.stop()
    return client, cluster
