"""A minimal playback client for baselines.

Reuses the exact buffer and decoder models of the real client (so the
comparison is apples-to-apples on the display side) but speaks no group
communication and no flow control: baselines push at a fixed rate.
"""

from __future__ import annotations

from repro.client.buffers import InsertOutcome, SoftwareBuffer
from repro.media.decoder import HardwareDecoder
from repro.net.address import Endpoint, VIDEO_PORT
from repro.net.network import Network
from repro.net.packet import Datagram
from repro.net.udp import UdpSocket
from repro.service.protocol import FramePacket
from repro.sim.core import Simulator
from repro.sim.process import Timer
from repro.telemetry.series import Probe


class MiniClient:
    """Receive-buffer-display pipeline without the control plane."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: int,
        fps: int = 30,
        sw_capacity_frames: int = 37,
        hw_capacity_bytes: int = 240 * 1024,
        probe_period_s: float = 0.25,
    ) -> None:
        self.sim = sim
        self.fps = fps
        self.socket = UdpSocket(
            network.node(node_id), VIDEO_PORT, on_receive=self._on_datagram
        )
        self.software_buffer = SoftwareBuffer(sw_capacity_frames)
        self.decoder = HardwareDecoder(hw_capacity_bytes)
        self.received = 0
        self.late_frames = 0
        self.overflow_discards = 0
        self.playback_started = False
        self._decoder_timer = None
        self._probe = Probe(sim, probe_period_s)
        self.skipped_cum = self._probe.watch(
            "skipped_cumulative", lambda: self.decoder.stats.skipped_gaps
        )
        self.sw_occupancy = self._probe.watch(
            "software_frames", lambda: self.software_buffer.occupancy
        )

    @property
    def endpoint(self) -> Endpoint:
        return self.socket.endpoint

    @property
    def skipped_total(self) -> int:
        return self.decoder.stats.skipped_gaps

    @property
    def stall_time_s(self) -> float:
        return self.decoder.stats.stall_time_s

    def _on_datagram(self, datagram: Datagram) -> None:
        payload = datagram.payload
        if not isinstance(payload, FramePacket):
            return
        frame = payload.frame
        self.received += 1
        if frame.index <= self.decoder.highest_pushed_index:
            self.late_frames += 1
        else:
            eviction = self.software_buffer.insert(frame)
            if eviction.outcome == InsertOutcome.DUPLICATE:
                self.late_frames += 1
            elif eviction.outcome == InsertOutcome.STORED_EVICTED:
                self.overflow_discards += 1
        self._pump()
        if not self.playback_started:
            self.playback_started = True
            self._decoder_timer = Timer(self.sim, 1.0 / self.fps, self._tick)

    def _tick(self) -> None:
        self.decoder.consume_one(self.sim.now)
        self._pump()

    def _pump(self) -> None:
        while True:
            frame = self.software_buffer.peek_next()
            if frame is None or not self.decoder.has_space_for(frame):
                return
            self.decoder.push(self.software_buffer.pop_next())

    def stop(self) -> None:
        if self._decoder_timer is not None:
            self._decoder_timer.cancel()
        self.decoder.end_stall(self.sim.now)
        self._probe.stop()
        if not self.socket.closed:
            self.socket.close()
