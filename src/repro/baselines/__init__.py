"""Comparison baselines for the fault-tolerance evaluation.

* :mod:`repro.baselines.single_server` — a conventional single-server
  VoD deployment (replication degree 1): any server failure kills the
  stream.  The trivial lower bound.
* :mod:`repro.baselines.striped` — a Tiger-like striped video cluster
  (Bolosky et al., the only prior system the paper credits with
  server-failure tolerance): movies striped over tightly coupled
  servers with declustered mirroring.  Tolerates exactly one failure;
  the paper's group-communication service tolerates k-1 of k replicas.
"""

from repro.baselines.mini_client import MiniClient
from repro.baselines.single_server import run_single_server_crash
from repro.baselines.striped import StripedCluster, run_striped_crash

__all__ = [
    "MiniClient",
    "StripedCluster",
    "run_single_server_crash",
    "run_striped_crash",
]
