"""The trivial baseline: one server, no replication, no failover.

Uses the full VoD stack with a replication degree of 1 — everything is
identical to the fault-tolerant deployment except that no other replica
exists, so when the server crashes the client's buffers drain and the
display freezes for good.
"""

from __future__ import annotations

from typing import Tuple

from repro.client.player import VoDClient
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


def run_single_server_crash(
    crash_at: float = 30.0,
    duration_s: float = 90.0,
    seed: int = 41,
) -> Tuple[VoDClient, Deployment]:
    """One server, one client; crash the server mid-movie."""
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=2)
    catalog = MovieCatalog([Movie.synthetic("feature", duration_s=duration_s)])
    deployment = Deployment(topology, catalog, server_nodes=[0])
    client = deployment.attach_client(1)
    client.request_movie("feature")
    deployment.controller.crash_server_at(crash_at, "server0")
    sim.run_until(duration_s)
    client.decoder.end_stall(sim.now)
    return client, deployment
