"""Named, independently seeded random streams.

Experiments need randomness in several places (link loss, jitter, frame
sizes, scheduling noise).  Drawing everything from a single generator
makes results fragile: adding one extra draw in the network code would
silently reshuffle frame sizes.  The registry instead derives one
independent :class:`random.Random` per *name* from the master seed, so
each consumer owns its own stream.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory and cache of named deterministic random streams."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The per-stream seed is a stable hash of the master seed and the
        name, so streams are independent of creation order and of each
        other.
        """
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive_seed(name))
            self._streams[name] = stream
        return stream

    def _derive_seed(self, name: str) -> int:
        material = f"{self.master_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")

    def names(self) -> list:
        """Names of all streams created so far (sorted, for reporting)."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self.master_seed} streams={len(self._streams)}>"
