"""Pausing the cyclic garbage collector around bounded hot runs.

Profiling the flyweight scale rig (N=20 000, 8 simulated seconds)
showed CPython's generational collector running 782 gen-0, 71 gen-1 and
6 gen-2 collections over the run and collecting **zero** objects every
single time — the simulator's object graph is reference-counted
acyclically (events, datagrams and frames are dropped deterministically
and ``EventHandle.cancel`` clears its references precisely so cycles
never form).  Those no-op collections still pay a full traversal of the
live heap, which at flyweight scale is 33% of wall time (12.1 s with
the collector on, 8.1 s with it off).

:func:`paused_gc` packages the safe way to claim that time back for a
*bounded* run: automatic collection is disabled on entry and restored
on exit, with one explicit ``gc.collect()`` at the end so anything a
run did leave cyclic is reclaimed before the process moves on.  Nesting
is safe (the previous enabled-state is restored, not assumed), and a
run that raises still restores the collector.

Shard workers (:mod:`repro.shard.worker`) and the scale experiment's
measurement points run inside this gate; long-lived interactive
processes should not, which is why it is opt-in rather than wired into
``Simulator``.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Iterator


@contextmanager
def paused_gc(enabled: bool = True) -> Iterator[None]:
    """Disable automatic cyclic GC for the duration of a bounded run.

    ``enabled=False`` makes the gate a no-op, so callers can thread a
    single flag through instead of branching around the context
    manager.  On exit the collector's previous state is restored and —
    when the gate was active — one explicit collection runs to reclaim
    whatever the run left behind.
    """
    if not enabled:
        yield
        return
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        gc.collect()
