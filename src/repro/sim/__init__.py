"""Discrete-event simulation kernel.

The kernel provides a deterministic virtual clock, a cancellable event
queue, periodic timers, generator-based processes and named random
streams.  Every other subsystem in :mod:`repro` is driven by a single
:class:`Simulator` instance, which makes whole-system experiments exactly
reproducible from a seed.
"""

from repro.sim.core import EventHandle, Simulator
from repro.sim.process import Process, Timer, sleep
from repro.sim.rng import RngRegistry
from repro.telemetry.trace import TraceRecord, Tracer

__all__ = [
    "EventHandle",
    "Process",
    "RngRegistry",
    "Simulator",
    "Timer",
    "TraceRecord",
    "Tracer",
    "sleep",
]
