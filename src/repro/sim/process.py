"""Generator-based processes and periodic timers.

Most protocol code in :mod:`repro` is written as plain callbacks, but
sequential logic (scenario scripts, drivers in tests) reads better as a
generator that yields the number of seconds to sleep::

    def script(sim):
        yield 38.0
        server.crash()
        yield 24.0
        deployment.start_server(node)

    Process(sim, script(sim))

A :class:`Timer` is a cancellable periodic callback — the building block
for heartbeats, state-sync ticks and frame pacing.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.sim.core import EventHandle, Simulator

SleepGenerator = Generator[float, None, None]


class sleep(float):
    """Marker type for yielded delays; plain floats work identically."""

    __slots__ = ()


class Process:
    """Drives a generator that yields sleep durations (seconds).

    The process starts immediately (its first segment runs at the current
    instant).  It finishes when the generator returns, or when
    :meth:`cancel` is called.
    """

    def __init__(self, sim: Simulator, generator: SleepGenerator) -> None:
        self.sim = sim
        self._generator = generator
        self._handle: Optional[EventHandle] = None
        self.finished = False
        self.cancelled = False
        self._handle = sim.call_soon(self._advance)

    def cancel(self) -> None:
        """Stop the process before its next segment runs."""
        if self.finished:
            return
        self.cancelled = True
        self.finished = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        self._generator.close()

    def _advance(self) -> None:
        if self.finished:
            return
        try:
            delay = next(self._generator)
        except StopIteration:
            self.finished = True
            self._handle = None
            return
        if not isinstance(delay, (int, float)):
            self.cancel()
            raise SimulationError(
                f"process yielded {delay!r}; expected a delay in seconds"
            )
        self._handle = self.sim.call_after(float(delay), self._advance)


class Timer:
    """A cancellable periodic timer.

    Parameters
    ----------
    sim:
        The simulator driving the timer.
    interval:
        Seconds between firings.
    callback:
        Invoked with ``*args`` on every firing.
    start_delay:
        Delay before the first firing; defaults to one full ``interval``.
    jitter:
        When nonzero, each interval is perturbed uniformly by
        ``+- jitter`` seconds using the ``"timer.jitter"`` random stream —
        useful to desynchronize heartbeats across nodes.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive, got {interval!r}")
        if jitter < 0 or jitter >= interval:
            raise SimulationError(
                f"timer jitter must be in [0, interval), got {jitter!r}"
            )
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.args = args
        self.jitter = jitter
        self.fired_count = 0
        self._stopped = False
        first = interval if start_delay is None else start_delay
        self._handle: Optional[EventHandle] = sim.call_after(
            self._jittered(first), self._fire
        )

    def cancel(self) -> None:
        """Stop the timer.  Idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def active(self) -> bool:
        return not self._stopped

    def _jittered(self, base: float) -> float:
        if self.jitter == 0.0:
            return base
        offset = self.sim.rng("timer.jitter").uniform(-self.jitter, self.jitter)
        return max(0.0, base + offset)

    def _fire(self) -> None:
        if self._stopped:
            return
        # Re-arm before the callback so a callback that cancels the timer
        # (or raises) leaves consistent state.  The handle that just
        # fired is recycled (it is out of the queue by now), so a
        # long-lived timer allocates one EventHandle total.
        self._handle = self.sim.reschedule(
            self._handle, self.sim.now + self._jittered(self.interval)
        )
        self.fired_count += 1
        self.callback(*self.args)
