"""The discrete-event simulator core.

A :class:`Simulator` owns a virtual clock and a priority queue of pending
events.  Events scheduled for the same instant fire in the order they were
scheduled (FIFO tie-breaking via a monotonically increasing sequence
number), which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.rng import RngRegistry
from repro.telemetry.bus import Telemetry
from repro.telemetry.trace import Tracer, _callback_name


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the queue entry stays in the heap but is skipped
    when popped.  This keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_tel")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Set by Simulator.call_at only while telemetry is active, so a
        # cancel can report what was cancelled without the handle paying
        # for a bus reference in the common (inactive) case.
        self._tel: Any = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._tel is not None and not self.cancelled and self._tel.active:
            self._tel.emit(
                "sim.cancel", at=self.time, name=_callback_name(self.callback)
            )
        self.cancelled = True
        # Drop references so cancelled events do not pin large objects
        # while they wait to be popped from the heap.
        self.callback = _noop
        self.args = ()
        self._tel = None

    @property
    def active(self) -> bool:
        return not self.cancelled

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named random streams (see
        :class:`repro.sim.rng.RngRegistry`).
    trace:
        When true, a :class:`repro.telemetry.trace.Tracer` records every
        fired event; useful in tests and when debugging protocol
        interleavings.
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[EventHandle] = []
        self._running = False
        self._stopped = False
        self.rngs = RngRegistry(seed)
        self.tracer = Tracer(enabled=trace)
        self.telemetry = Telemetry(clock=lambda: self._now)
        self.seed = seed

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def rng(self, name: str):
        """Return the named deterministic random stream."""
        return self.rngs.stream(name)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual ``time``.

        Scheduling in the past raises :class:`SimulationError`; scheduling
        at the present instant is allowed and fires after already-queued
        events for that instant.
        """
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at time NaN")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, now is t={self._now:.6f}"
            )
        handle = EventHandle(time, self._seq, callback, args)
        if self.telemetry.active:
            handle._tel = self.telemetry
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def call_after(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant."""
        return self.call_at(self._now, callback, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        handle = self._pop_next()
        if handle is None:
            return False
        self._now = handle.time
        self.tracer.record(self._now, handle.callback, handle.args)
        tel = self.telemetry
        if tel.active:
            tel.emit("sim.fire", name=_callback_name(handle.callback))
        handle.callback(*handle.args)
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains.  Returns the event count."""
        count = 0
        self._stopped = False
        while not self._stopped:
            if max_events is not None and count >= max_events:
                break
            if not self.step():
                break
            count += 1
        return count

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run events with timestamps ``<= time``; advance the clock to it.

        The clock always ends at exactly ``time`` (even if the queue drains
        earlier), so back-to-back ``run_until`` calls behave like a real
        clock that keeps ticking.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to t={time:.6f} from t={self._now:.6f}"
            )
        count = 0
        self._stopped = False
        while not self._stopped:
            if max_events is not None and count >= max_events:
                break
            nxt = self._peek_next()
            if nxt is None or nxt.time > time:
                break
            self.step()
            count += 1
        if not self._stopped:
            self._now = max(self._now, time)
        return count

    def stop(self) -> None:
        """Stop the currently executing ``run``/``run_until`` loop."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of live (non-cancelled) queued events."""
        return sum(1 for handle in self._queue if not handle.cancelled)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        handle = self._peek_next()
        return handle.time if handle is not None else None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pop_next(self) -> Optional[EventHandle]:
        while self._queue:
            handle = heapq.heappop(self._queue)
            if not handle.cancelled:
                return handle
        return None

    def _peek_next(self) -> Optional[EventHandle]:
        while self._queue:
            handle = self._queue[0]
            if handle.cancelled:
                heapq.heappop(self._queue)
                continue
            return handle
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now:.6f} pending={self.pending_count()} "
            f"seed={self.seed}>"
        )
