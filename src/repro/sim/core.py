"""The discrete-event simulator core.

A :class:`Simulator` owns a virtual clock and a priority queue of pending
events.  Events scheduled for the same instant fire in the order they were
scheduled (FIFO tie-breaking via a monotonically increasing sequence
number), which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.rng import RngRegistry
from repro.telemetry.bus import Telemetry
from repro.telemetry.trace import Tracer, _callback_name


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the queue entry stays in the heap but is skipped
    when popped.  This keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_tel", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Set by Simulator.call_at only while telemetry is active, so a
        # cancel can report what was cancelled without the handle paying
        # for a bus reference in the common (inactive) case.
        self._tel: Any = None
        # Owning simulator, so cancel() can keep the live-event counter
        # exact without a scan (None for handles built outside one).
        self._sim: Any = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        if self._tel is not None and self._tel.active:
            self._tel.emit(
                "sim.cancel", at=self.time, name=_callback_name(self.callback)
            )
        if self._sim is not None:
            self._sim._live -= 1
        self.cancelled = True
        # Drop references so cancelled events do not pin large objects
        # while they wait to be popped from the heap.
        self.callback = _noop
        self.args = ()
        self._tel = None

    @property
    def active(self) -> bool:
        return not self.cancelled

    def __lt__(self, other: "EventHandle") -> bool:
        # Tuple-free ordering: this comparison runs millions of times
        # per large run inside heapq, and building two tuples per call
        # measurably dominates heap maintenance (~28% of push/pop cost
        # at N=200k handles).  Times are never NaN (call_at guards), so
        # the chained compare is a strict weak order identical to
        # (time, seq) tuple comparison.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named random streams (see
        :class:`repro.sim.rng.RngRegistry`).
    trace:
        When true, a :class:`repro.telemetry.trace.Tracer` records every
        fired event; useful in tests and when debugging protocol
        interleavings.
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[EventHandle] = []
        self._running = False
        self._stopped = False
        # Count of live (non-cancelled, not-yet-fired) queued events,
        # maintained incrementally so pending_count() is O(1).
        self._live = 0
        self.rngs = RngRegistry(seed)
        self.tracer = Tracer(enabled=trace)
        self.telemetry = Telemetry(clock=lambda: self._now)
        self.seed = seed

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def rng(self, name: str):
        """Return the named deterministic random stream."""
        return self.rngs.stream(name)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual ``time``.

        Scheduling in the past raises :class:`SimulationError`; scheduling
        at the present instant is allowed and fires after already-queued
        events for that instant.
        """
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at time NaN")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, now is t={self._now:.6f}"
            )
        handle = EventHandle(time, self._seq, callback, args)
        handle._sim = self
        if self.telemetry.active:
            handle._tel = self.telemetry
        self._seq += 1
        self._live += 1
        heapq.heappush(self._queue, handle)
        return handle

    def call_after(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant."""
        return self.call_at(self._now, callback, *args)

    def reschedule(self, handle: EventHandle, time: float) -> EventHandle:
        """Re-queue an already-fired handle for ``time`` and return it.

        This recycles the :class:`EventHandle` allocation for hot
        periodic callers (timers, burst replay).  The handle must not be
        live in the queue: only pass a handle whose event has already
        fired (it is popped before its callback runs) or that was
        cancelled *and then* popped.  The callback and args are kept;
        callers may mutate ``handle.args`` between firings.
        """
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at time NaN")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, now is t={self._now:.6f}"
            )
        handle.time = time
        handle.seq = self._seq
        handle.cancelled = False
        handle._sim = self
        if self.telemetry.active:
            handle._tel = self.telemetry
        self._seq += 1
        self._live += 1
        heapq.heappush(self._queue, handle)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        handle = self._pop_next()
        if handle is None:
            return False
        self._now = handle.time
        if self.tracer.enabled:
            self.tracer.record(self._now, handle.callback, handle.args)
        tel = self.telemetry
        if tel.active:
            tel.emit("sim.fire", name=_callback_name(handle.callback))
        handle.callback(*handle.args)
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains.  Returns the event count."""
        count = 0
        self._stopped = False
        while not self._stopped:
            if max_events is not None and count >= max_events:
                break
            if not self.step():
                break
            count += 1
        return count

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run events with timestamps ``<= time``; return how many ran.

        On a *complete* slice — the queue drained or only holds events
        past ``time`` — the clock advances to exactly ``time``, so
        back-to-back ``run_until`` calls behave like a real clock that
        keeps ticking.  On an *early* exit (the ``max_events`` budget ran
        out, or ``stop()`` fired) the clock stays at the last dispatched
        event: events ``<= time`` are still pending, and pretending the
        interval elapsed would let the caller schedule into their past.
        Chunked drivers therefore loop ``while sim.now < time`` and need
        no compensation.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to t={time:.6f} from t={self._now:.6f}"
            )
        count = 0
        exhausted = False
        self._stopped = False
        while not self._stopped:
            if max_events is not None and count >= max_events:
                exhausted = True
                break
            nxt = self._peek_next()
            if nxt is None or nxt.time > time:
                break
            self.step()
            count += 1
        if not self._stopped and not exhausted:
            self._now = max(self._now, time)
        return count

    def stop(self) -> None:
        """Stop the currently executing ``run``/``run_until`` loop."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of live (non-cancelled) queued events.  O(1)."""
        return self._live

    def _pending_count_scan(self) -> int:
        """O(n) reference implementation of :meth:`pending_count`.

        Kept for the agreement test in ``tests/sim``: the incremental
        counter must always match a full scan of the heap.
        """
        return sum(1 for handle in self._queue if not handle.cancelled)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        handle = self._peek_next()
        return handle.time if handle is not None else None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pop_next(self) -> Optional[EventHandle]:
        while self._queue:
            handle = heapq.heappop(self._queue)
            if not handle.cancelled:
                self._live -= 1
                # The handle is out of the queue now; a late cancel()
                # must not decrement the live counter a second time.
                handle._sim = None
                return handle
        return None

    def _peek_next(self) -> Optional[EventHandle]:
        while self._queue:
            handle = self._queue[0]
            if handle.cancelled:
                heapq.heappop(self._queue)
                continue
            return handle
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now:.6f} pending={self.pending_count()} "
            f"seed={self.seed}>"
        )
