"""Deprecated shim — the tracer moved to :mod:`repro.telemetry.trace`.

Kept so pre-telemetry imports (``from repro.sim.trace import Tracer``)
keep working; new code should import from :mod:`repro.telemetry`.
"""

import warnings

from repro.telemetry.trace import TraceRecord, Tracer

__all__ = ["TraceRecord", "Tracer"]

warnings.warn(
    "repro.sim.trace moved to repro.telemetry.trace; "
    "import Tracer/TraceRecord from repro.telemetry instead",
    DeprecationWarning,
    stacklevel=2,
)
