"""Event tracing for the simulation kernel.

Tracing is off by default (it costs memory); tests and debugging sessions
enable it to inspect exact event interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One fired event: when it ran and what ran."""

    time: float
    name: str
    args: Tuple[Any, ...]


@dataclass
class Tracer:
    """Collects :class:`TraceRecord` entries for fired events."""

    enabled: bool = False
    records: List[TraceRecord] = field(default_factory=list)
    max_records: int = 1_000_000

    def record(
        self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]
    ) -> None:
        if not self.enabled or len(self.records) >= self.max_records:
            return
        self.records.append(TraceRecord(time, _callback_name(callback), args))

    def clear(self) -> None:
        self.records.clear()

    def names(self) -> List[str]:
        """The sequence of fired callback names, in firing order."""
        return [record.name for record in self.records]


def _callback_name(callback: Callable[..., Any]) -> str:
    qualname = getattr(callback, "__qualname__", None)
    if qualname is not None:
        return qualname
    return repr(callback)
