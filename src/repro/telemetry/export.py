"""JSONL export of a telemetry stream.

One JSON object per line:

* a ``{"kind": "meta", ...}`` header (schema version, scenario, seed);
* one ``{"t": ..., "kind": ..., <fields>}`` record per bus event;
* a ``{"kind": "summary", ...}`` trailer (event counts, the metric
  registry snapshot, the kernel tracer's ``dropped`` count, and
  whatever run-level counters the caller adds).

The default subscription excludes the two firehose kinds — kernel
``sim.*`` events and per-packet ``net.deliver`` — so a 240-second
scenario exports megabytes, not gigabytes; pass ``full=True`` to keep
everything.  Non-JSON field values (e.g. ``ProcessId``) fall back to
``str()``.

Million-viewer ergonomics: a path ending in ``.gz`` (conventionally
``.jsonl.gz``) writes through :mod:`gzip` transparently — and
:func:`read_jsonl` reads it back the same way; ``max_events`` caps the
event records, writing one explicit ``{"kind": "truncated"}`` marker at
the cap (the summary still lands, with an ``events_dropped`` count), so
a huge run exports *something* instead of being all-or-nothing; and
``since``/``until`` restrict the export to a sim-time window.
"""

from __future__ import annotations

import gzip
import json
from typing import Dict, List, Optional, Sequence

from repro.telemetry.bus import Telemetry, TelemetryEvent

SCHEMA_VERSION = 1

#: Kinds excluded from default (non-``full``) exports.
FIREHOSE_PREFIXES = ("sim.", "net.deliver")

#: The default export keeps every application-level kind.
DEFAULT_PREFIXES = (
    "client.", "server.", "gcs.", "net.drop", "fault.", "span.", "metric.",
    "slo.", "invariant.",
)


def _open_text(path: str, mode: str):
    """Open ``path`` for text I/O, through gzip when it ends in .gz."""
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


class JsonlExporter:
    """Subscribes to a :class:`Telemetry` bus and streams events to disk.

    Usage::

        exporter = JsonlExporter(sim.telemetry, "run.jsonl")
        exporter.meta(scenario="lan", seed=11)
        ...  # run the simulation
        exporter.close(tracer_dropped=sim.tracer.dropped)

    Or as a context manager, which guarantees the summary trailer is
    written even when the run raises mid-simulation — a crashed
    experiment still leaves a readable artifact (the summary then
    carries ``crashed`` and ``error`` fields)::

        with JsonlExporter(sim.telemetry, "run.jsonl") as exporter:
            exporter.meta(scenario="lan", seed=11)
            ...  # run the simulation (may raise)
    """

    def __init__(
        self,
        telemetry: Telemetry,
        path: str,
        prefixes: Optional[Sequence[str]] = None,
        full: bool = False,
        max_events: Optional[int] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        self.telemetry = telemetry
        self.path = path
        self.events_written = 0
        #: Events past the ``max_events`` cap (counted, marked, skipped).
        self.events_dropped = 0
        #: Events outside the ``since``/``until`` window (just skipped).
        self.events_filtered = 0
        self.max_events = max_events
        self.since = since
        self.until = until
        self._truncation_marked = False
        self._handle = _open_text(path, "w")
        if prefixes is None:
            prefixes = None if full else DEFAULT_PREFIXES
        self._subscription = telemetry.subscribe(self._on_event, prefixes=prefixes)
        self._closed = False

    def meta(self, **fields) -> None:
        """Write the header record (call once, before the run)."""
        header = {"kind": "meta", "schema": SCHEMA_VERSION}
        if self.since is not None:
            header["since"] = self.since
        if self.until is not None:
            header["until"] = self.until
        self._write(dict(header, **fields))

    def _on_event(self, event: TelemetryEvent) -> None:
        if (self.since is not None and event.time < self.since) or (
            self.until is not None and event.time > self.until
        ):
            self.events_filtered += 1
            return
        if self.max_events is not None and self.events_written >= self.max_events:
            self.events_dropped += 1
            if not self._truncation_marked:
                self._truncation_marked = True
                self._write({
                    "kind": "truncated",
                    "t": event.time,
                    "max_events": self.max_events,
                })
            return
        self.events_written += 1
        self._write(event.as_dict())

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, default=str))
        self._handle.write("\n")

    def close(self, **summary_fields) -> None:
        """Detach, write the summary trailer and close the file.

        Spans still open are *abandoned* first (each emits a
        ``span.abandoned`` event with its duration so far, captured by
        this export) and listed in the summary's ``open_spans``.
        """
        if self._closed:
            return
        self._closed = True
        # Abandon before detaching so the span.abandoned events land in
        # this file; the summary still lists them as never-finished.
        open_spans = [
            {"span": s.kind, "key": s.key, "start": s.start}
            for s in self.telemetry.abandon_open_spans(reason="export-close")
        ]
        self._subscription.close()
        summary = {
            "kind": "summary",
            "events_written": self.events_written,
            "events_emitted": self.telemetry.emitted,
            "metrics": self.telemetry.metrics.snapshot(),
            "open_spans": open_spans,
        }
        if self.events_dropped:
            summary["events_dropped"] = self.events_dropped
        if self.events_filtered:
            summary["events_filtered"] = self.events_filtered
        summary.update(summary_fields)
        self._write(summary)
        self._handle.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is None:
            self.close()
        else:
            self.close(crashed=True, error=f"{exc_type.__name__}: {exc}")
        return False  # never swallow the exception


def read_jsonl(
    path: str,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> List[Dict]:
    """Parse a telemetry JSONL file back into a list of dicts.

    Tolerant of a truncated final line (a run killed mid-write): a line
    that fails to parse is skipped rather than poisoning the whole
    artifact.  An empty file parses to an empty list.  A ``.gz`` path
    is decompressed transparently.  ``since``/``until`` keep only the
    event records inside the sim-time window (records without a ``t``
    — meta, summary, truncation markers — always pass).
    """
    records = []
    with _open_text(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # truncated tail of a crashed run
            if since is not None or until is not None:
                t = record.get("t")
                if t is not None and record.get("kind") not in (
                    "meta", "summary", "truncated"
                ):
                    t = float(t)
                    if (since is not None and t < since) or (
                        until is not None and t > until
                    ):
                        continue
            records.append(record)
    return records
