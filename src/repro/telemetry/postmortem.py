"""Human-readable incident postmortems (``repro-vod postmortem``).

The flight recorder assembles bounded :class:`~repro.telemetry.flight.Incident`
objects; this module renders them as the report a reviewer reads after
a failure: what triggered, the causal chain from fault to resume, the
exact detect+agree+redistribute takeover decomposition, whose QoE was
hit and by how much, and a timeline excerpt of the window.

Works from a live run (the recorder's incidents) or offline from a
recorded JSONL export (:func:`incidents_from_export` replays the
stream through a detached recorder) — the same renderer serves both.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.telemetry.causal import FailoverBreakdown, render_breakdowns
from repro.telemetry.flight import (
    FlightRecorderConfig, Incident, incidents_from_records,
)


def incidents_from_export(
    path: str,
    config: Optional[FlightRecorderConfig] = None,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> List[Incident]:
    """Rebuild incidents from a telemetry JSONL (or .jsonl.gz) export."""
    from repro.telemetry.export import read_jsonl

    return incidents_from_records(
        read_jsonl(path, since=since, until=until), config
    )


def _describe(event: Dict) -> str:
    skip = ("t", "kind")
    return " ".join(
        f"{key}={value}" for key, value in event.items() if key not in skip
    )


def render_incident(incident: Incident, max_rows: int = 40) -> str:
    """One incident's postmortem: triggers, chains, breakdowns, QoE."""
    from repro.metrics.report import Table  # lazy: keeps import order simple

    blocks: List[str] = []
    header = (
        f"{incident.id}: {incident.trigger_kind} at "
        f"t={incident.trigger_t:.3f}s"
    )
    if incident.trigger_detail:
        header += f" ({incident.trigger_detail})"
    if incident.shard:
        header += f" [shard {incident.shard}]"
    blocks.append(header)
    window = (
        f"window [{incident.window_start:.3f}s, {incident.window_end:.3f}s]"
        f"  pre={incident.pre_records} captured={incident.captured_records}"
    )
    if incident.truncated_records:
        window += f" truncated={incident.truncated_records}"
    blocks.append(window)

    if incident.n_triggers > 1:
        trigger_table = Table(
            f"Triggers ({len(incident.triggers)} of {incident.n_triggers})",
            ["t (s)", "kind", "detail"],
        )
        for trigger in incident.triggers[:max_rows]:
            trigger_table.add_row(
                f"{trigger.get('t', 0.0):9.3f}",
                trigger.get("kind", "?"),
                trigger.get("detail", ""),
            )
        blocks.append(trigger_table.render())

    for chain in incident.chains:
        path = chain.get("path") or []
        if not path:
            continue
        lines = [
            f"causal chain {chain.get('cause')} "
            f"({chain.get('events')} events, "
            f"{chain.get('start', 0.0):.3f}s -> {chain.get('end', 0.0):.3f}s):"
        ]
        for step in path:
            lines.append(
                f"  {step.get('t', 0.0):9.3f}  {step.get('kind', '?'):<24} "
                f"{step.get('detail', '')}"
            )
        blocks.append("\n".join(lines))

    if incident.breakdowns:
        shown = [
            FailoverBreakdown(**b) for b in incident.breakdowns[:max_rows]
        ]
        blocks.append(render_breakdowns(shown))
        if incident.n_breakdowns > len(shown):
            blocks.append(
                f"... {incident.n_breakdowns - len(shown)} more "
                f"failover(s) in this incident"
            )

    qoe = incident.qoe or {}
    if qoe.get("clients_hit"):
        totals = qoe.get("totals", {})
        impact_table = Table(
            f"QoE impact ({qoe['clients_hit']} client(s) hit; totals: "
            f"stalls={totals.get('stalls', 0)} "
            f"stall_s={totals.get('stall_s', 0.0):.2f} "
            f"migrations={totals.get('migrations', 0)} "
            f"resumes={totals.get('resumes', 0)})",
            ["client", "penalty", "stalls", "stall (s)", "migr", "resumes",
             "rejects"],
        )
        for item in qoe.get("top", []):
            impact_table.add_row(
                item.get("client", "?"),
                f"{item.get('penalty', 0.0):.1f}",
                item.get("stalls", 0),
                f"{item.get('stall_s', 0.0):.2f}",
                item.get("migrations", 0),
                item.get("resumes", 0),
                item.get("rejects", 0),
            )
        blocks.append(impact_table.render())

    if incident.excerpt:
        excerpt_table = Table(
            f"Timeline excerpt ({min(len(incident.excerpt), max_rows)} of "
            f"{len(incident.excerpt)} notable events)",
            ["t (s)", "kind", "detail"],
        )
        for event in incident.excerpt[:max_rows]:
            excerpt_table.add_row(
                f"{event.get('t', 0.0):9.3f}",
                event.get("kind", "?"),
                _describe(event),
            )
        blocks.append(excerpt_table.render())

    return "\n\n".join(blocks)


def render_incidents(
    incidents: Sequence[Incident],
    max_rows: int = 40,
    metering: Optional[Dict] = None,
) -> str:
    """The full postmortem report: every incident plus recorder totals."""
    blocks: List[str] = []
    if not incidents:
        blocks.append("no incidents: no trigger fired in this run/window")
    else:
        blocks.append(
            f"{len(incidents)} incident(s); first trigger "
            f"{incidents[0].trigger_kind} at t={incidents[0].trigger_t:.3f}s"
        )
        for incident in incidents:
            blocks.append("-" * 72)
            blocks.append(render_incident(incident, max_rows=max_rows))
    if metering:
        blocks.append("-" * 72)
        blocks.append(
            "flight recorder: "
            f"seen={sum(metering.get('seen', {}).values())} "
            f"retained={sum(metering.get('retained', {}).values())} "
            f"sampled_out={sum(metering.get('sampled_out', {}).values())} "
            f"evicted={sum(metering.get('evicted', {}).values())} "
            f"captured={metering.get('captured_total', 0)} "
            f"occupancy={metering.get('occupancy', 0)} "
            f"~{metering.get('estimated_bytes', 0) / 1024.0:.0f} KiB "
            f"triggers={metering.get('triggers_seen', 0)} "
            f"(dropped={metering.get('triggers_dropped', 0)})"
        )
    return "\n\n".join(blocks)
