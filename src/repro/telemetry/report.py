"""Timeline reconstruction from a telemetry JSONL export.

``repro-vod report run.jsonl`` renders a run's story from its exported
events alone: the notable-event timeline (faults, view installs,
sessions, takeover/rebalance spans, rate changes, water-mark crossings,
stalls), per-span latencies, and buffer-level summaries rebuilt from
``metric.sample`` records — exactly the reconstruction the paper's
evaluation section performs by hand.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Kinds that tell the story; everything else is counted, not listed.
TIMELINE_KINDS = (
    "fault.",
    "gcs.view",
    "gcs.flush",
    "gcs.fd.",
    "server.session",
    "server.crash",
    "server.shutdown",
    "server.rate",
    "server.emergency",
    "client.migrate",
    "client.watermark",
    "client.stall",
    "client.skip",
    "client.flow",
    "client.resume",
    "client.playback",
    "span.",
    "slo.",
)


def is_timeline_kind(kind: str) -> bool:
    return kind.startswith(TIMELINE_KINDS)


class RunTimeline:
    """Parsed view of one exported run."""

    def __init__(self, records: List[Dict]) -> None:
        self.meta: Dict = {}
        self.summary: Dict = {}
        self.truncated: Optional[Dict] = None
        self.events: List[Dict] = []
        for record in records:
            kind = record.get("kind")
            if kind == "meta":
                self.meta = record
            elif kind == "summary":
                self.summary = record
            elif kind == "truncated":
                # The exporter's max_events marker: everything after its
                # ``t`` was counted, not written.
                self.truncated = record
            else:
                self.events.append(record)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            kind = event.get("kind", "?")
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def timeline_events(self) -> List[Dict]:
        return [e for e in self.events if is_timeline_kind(e.get("kind", ""))]

    def spans(self) -> List[Dict]:
        """Completed + still-open spans, matched begin/end by (span, key).

        Begin/end pairs nest per key chronologically; an unmatched begin
        appears with ``duration_s=None``.  A ``span.abandoned`` close
        (the run ended first) counts as an end with ``abandoned=True``.
        """
        finished: List[Dict] = []
        open_spans: Dict[tuple, Dict] = {}
        for event in self.events:
            kind = event.get("kind")
            ident = (event.get("span"), event.get("key"))
            if kind == "span.begin":
                open_spans[ident] = {
                    "span": event.get("span"),
                    "key": event.get("key"),
                    "start": event.get("t"),
                    "end": None,
                    "duration_s": None,
                    "abandoned": False,
                }
            elif kind in ("span.end", "span.abandoned"):
                begun = open_spans.pop(ident, None)
                record = begun or {
                    "span": event.get("span"),
                    "key": event.get("key"),
                    "start": event.get("start"),
                    "abandoned": False,
                }
                record["end"] = event.get("t")
                record["duration_s"] = event.get("duration_s")
                record["abandoned"] = kind == "span.abandoned"
                finished.append(record)
        return finished + list(open_spans.values())

    def series_summaries(self) -> List[Dict]:
        """Min/mean/max/final per sampled (owner, series) pair."""
        samples: Dict[tuple, List[float]] = {}
        for event in self.events:
            if event.get("kind") != "metric.sample":
                continue
            ident = (event.get("owner", ""), event.get("series", "?"))
            samples.setdefault(ident, []).append(float(event.get("value", 0.0)))
        out = []
        for (owner, series), values in sorted(samples.items()):
            out.append({
                "owner": owner,
                "series": series,
                "n": len(values),
                "min": min(values),
                "mean": sum(values) / len(values),
                "max": max(values),
                "final": values[-1],
            })
        return out


def load_timeline(
    path: str,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> RunTimeline:
    """Parse an export, optionally restricted to a sim-time window.

    ``since``/``until`` filter at read time (``repro-vod report
    --since/--until``), so inspecting a postmortem window of a
    million-viewer artifact never materializes the whole run.
    """
    from repro.telemetry.export import read_jsonl

    return RunTimeline(read_jsonl(path, since=since, until=until))


def _describe(event: Dict) -> str:
    skip = ("t", "kind")
    parts = [
        f"{key}={value}" for key, value in event.items() if key not in skip
    ]
    return " ".join(parts)


def render_report(timeline: RunTimeline, max_rows: int = 80) -> str:
    """The ``repro-vod report`` text: header, counts, timeline, spans,
    QoE scorecards, SLO verdicts, failover breakdowns, buffer levels,
    summary.  Degrades gracefully: an empty or meta-only export renders
    a one-line note instead of empty tables."""
    from repro.metrics.report import Table  # lazy: keeps import order simple

    blocks: List[str] = []

    meta = dict(timeline.meta)
    meta.pop("kind", None)
    header = "telemetry run"
    if meta:
        header += ": " + " ".join(f"{k}={v}" for k, v in sorted(meta.items()))
    blocks.append(header)

    if not timeline.events:
        if timeline.meta or timeline.summary:
            blocks.append("no events recorded (meta-only export)")
        else:
            blocks.append("no events recorded (empty export)")
        _append_summary(timeline, blocks)
        return "\n\n".join(blocks)

    counts = timeline.counts_by_kind()
    count_table = Table("Event counts", ["kind", "events"])
    for kind in sorted(counts):
        count_table.add_row(kind, counts[kind])
    blocks.append(count_table.render())

    rows = timeline.timeline_events()
    shown = rows[:max_rows]
    timeline_table = Table(
        f"Timeline ({len(shown)} of {len(rows)} notable events)",
        ["t (s)", "kind", "detail"],
    )
    for event in shown:
        timeline_table.add_row(
            f"{event.get('t', 0.0):9.3f}", event.get("kind", "?"),
            _describe(event),
        )
    blocks.append(timeline_table.render())
    if len(rows) > len(shown):
        blocks.append(f"... {len(rows) - len(shown)} more (raise --max-rows)")

    spans = timeline.spans()
    if spans:
        span_table = Table(
            "Spans", ["span", "key", "start (s)", "end (s)", "duration (s)"]
        )
        for span in spans:
            duration = span.get("duration_s")
            if duration is None:
                shown = "open"
            else:
                shown = f"{duration:.3f}"
                if span.get("abandoned"):
                    shown += " (abandoned)"
            span_table.add_row(
                span.get("span"),
                span.get("key"),
                _maybe_time(span.get("start")),
                _maybe_time(span.get("end")),
                shown,
            )
        blocks.append(span_table.render())

    # Derived observability views, all recomputed from the export alone.
    from repro.telemetry.causal import TraceGraph, failover_breakdowns
    from repro.telemetry.causal import render_breakdowns
    from repro.telemetry.qoe import render_scorecards, scorecards_from_timeline
    from repro.telemetry.slo import render_slo, slo_from_timeline

    cards = scorecards_from_timeline(timeline)
    if cards:
        blocks.append(render_scorecards(cards))

    slo_summary = slo_from_timeline(timeline)
    if any(item.get("windows") for item in slo_summary.values()):
        blocks.append(render_slo(slo_summary))

    breakdowns = failover_breakdowns(TraceGraph(timeline.events))
    if breakdowns:
        blocks.append(render_breakdowns(breakdowns))

    series = timeline.series_summaries()
    if series:
        series_table = Table(
            "Sampled series (buffer levels, cumulative counters)",
            ["owner", "series", "samples", "min", "mean", "max", "final"],
        )
        for row in series:
            series_table.add_row(
                row["owner"], row["series"], row["n"],
                f"{row['min']:.0f}", f"{row['mean']:.1f}",
                f"{row['max']:.0f}", f"{row['final']:.0f}",
            )
        blocks.append(series_table.render())

    _append_summary(timeline, blocks)
    return "\n\n".join(blocks)


def _append_summary(timeline: RunTimeline, blocks: List[str]) -> None:
    summary = dict(timeline.summary)
    if not summary:
        return
    summary.pop("kind", None)
    summary.pop("metrics", None)
    blocks.append(
        "summary: " + " ".join(
            f"{k}={v}" for k, v in sorted(summary.items())
            if not isinstance(v, (dict, list))
        )
    )
    dropped = timeline.summary.get("tracer_dropped")
    if dropped:
        blocks.append(
            f"WARNING: kernel tracer dropped {dropped} records "
            "(trace truncated at max_records)"
        )
    if timeline.truncated is not None:
        dropped = timeline.summary.get("events_dropped", "?")
        blocks.append(
            f"WARNING: export truncated at "
            f"t={timeline.truncated.get('t', 0.0):.3f} "
            f"(max_events={timeline.truncated.get('max_events')}, "
            f"{dropped} events dropped)"
        )


def _maybe_time(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.3f}"
