"""Kernel event tracing (every fired event, in order).

Tracing is off by default (it costs memory); tests and debugging
sessions enable it (``Simulator(trace=True)``) to inspect exact event
interleavings.  Unlike bus events — which are sampled views of protocol
activity — the tracer is exhaustive, so it caps itself at
``max_records`` and counts what it had to drop (``dropped``) so a
truncated trace is detectable instead of silently incomplete.

Must not import the rest of :mod:`repro` (the sim kernel imports it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One fired event: when it ran and what ran."""

    time: float
    name: str
    args: Tuple[Any, ...]


@dataclass
class Tracer:
    """Collects :class:`TraceRecord` entries for fired events.

    ``dropped`` counts events that fired after ``records`` filled up;
    any non-zero value means the trace is truncated and analyses over
    it see only a prefix of the run.
    """

    enabled: bool = False
    records: List[TraceRecord] = field(default_factory=list)
    max_records: int = 1_000_000
    dropped: int = 0

    def record(
        self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]
    ) -> None:
        if not self.enabled:
            return
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, _callback_name(callback), args))

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def names(self) -> List[str]:
        """The sequence of fired callback names, in firing order."""
        return [record.name for record in self.records]


def _callback_name(callback: Callable[..., Any]) -> str:
    qualname = getattr(callback, "__qualname__", None)
    if qualname is not None:
        return qualname
    return repr(callback)
