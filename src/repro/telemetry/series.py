"""Counters, time series and sampling probes.

Moved here from ``repro.metrics.collector`` (which remains as a shim):
the probe is the telemetry subsystem's bridge between continuous state
(buffer occupancy, cumulative counters) and the event bus — every
sample it takes is also emitted as a ``metric.sample`` event when the
bus is active, which is how JSONL exports carry the Figure 4/5 curves
without adding any timer of their own (sampling always rides the same
probe timer, so enabling telemetry cannot perturb the simulation).

Import discipline: the sim kernel imports :mod:`repro.telemetry`, so
this module must not import kernel modules at import time — the Timer
import inside :meth:`Probe.__post_init__` is deliberately lazy.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple


@dataclass
class Counter:
    """A monotonically increasing event counter."""

    name: str
    value: int = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class TimeSeries:
    """(time, value) samples with query helpers used by the experiments."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"time series {self.name!r} got out-of-order sample at {time}"
            )
        self._times.append(time)
        self._values.append(value)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> Sequence[float]:
        return tuple(self._times)

    @property
    def values(self) -> Sequence[float]:
        return tuple(self._values)

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def value_at(self, time: float) -> Optional[float]:
        """Last sample at or before ``time`` (step interpolation)."""
        position = bisect.bisect_right(self._times, time) - 1
        if position < 0:
            return None
        return self._values[position]

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def min(self, start: float = float("-inf"), end: float = float("inf")):
        values = [v for t, v in self.window(start, end)]
        return min(values) if values else None

    def max(self, start: float = float("-inf"), end: float = float("inf")):
        values = [v for t, v in self.window(start, end)]
        return max(values) if values else None

    def mean(self, start: float = float("-inf"), end: float = float("inf")):
        values = [v for t, v in self.window(start, end)]
        return sum(values) / len(values) if values else None

    def final(self) -> Optional[float]:
        return self._values[-1] if self._values else None

    def increase_over(self, start: float, end: float) -> float:
        """Value growth across a window (for cumulative counters)."""
        before = self.value_at(start)
        after = self.value_at(end)
        return (after or 0.0) - (before or 0.0)


@dataclass
class Probe:
    """Samples callables into time series on a fixed period.

    When the owning simulator's telemetry bus is active, every sample is
    additionally emitted as a ``metric.sample`` event (fields:
    ``series``, ``value``, ``owner``) so exporters see the same curves
    the in-memory :class:`TimeSeries` accumulate.  ``owner`` tags whose
    probe this is (e.g. the client name) — series names alone repeat
    across clients.
    """

    sim: Any
    period: float
    owner: str = ""
    _sources: List[Tuple[TimeSeries, Callable[[], float]]] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        from repro.sim.process import Timer  # lazy: avoids an import cycle

        self._timer = Timer(self.sim, self.period, self._sample, start_delay=0.0)

    def watch(self, name: str, source: Callable[[], float]) -> TimeSeries:
        series = TimeSeries(name)
        self._sources.append((series, source))
        return series

    def stop(self) -> None:
        self._timer.cancel()

    def _sample(self) -> None:
        now = self.sim.now
        telemetry = getattr(self.sim, "telemetry", None)
        emitting = telemetry is not None and telemetry.active
        for series, source in self._sources:
            value = float(source())
            series.record(now, value)
            if emitting:
                telemetry.emit(
                    "metric.sample",
                    series=series.name,
                    value=value,
                    owner=self.owner,
                )
