"""Online SLO evaluation over the telemetry bus.

An :class:`SloMonitor` subscribes to the bus and evaluates windowed
service-level objectives *during* the run — the paper's service level,
stated as rules:

* **glitch-free**: at least 99% of active clients play without a stall
  in each window;
* **failover**: the p99 take-over/rebalance latency stays under 2 s;
* **emergency bandwidth**: extra refill bandwidth stays within 40% of
  the base stream rate per window (the paper's Section 4.1 budget).

Design constraint inherited from the bus: the monitor must not perturb
the simulation, so it never schedules timers.  Windows advance *lazily*
on event arrival — every event carries its virtual time, so when one
lands past the current window boundary the closed window is evaluated
first, then the event is folded into the new window.  Breach /
recovery transitions emit ``slo.breach`` / ``slo.recover`` events, and
windows that consume error budget faster than allowed emit ``slo.burn``
(burn rate = bad fraction over the allowed fraction, the SRE-workbook
measure).  The monitor subscribes with prefixes that exclude ``slo.``,
so its own emissions can never feed back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class WindowSnapshot:
    """What one closed window looked like, handed to each rule."""

    start: float
    end: float
    clients: int
    stalled: int
    failover_durations: List[float]  # cumulative over the run so far
    window_failovers: int
    extra_frames: float
    base_frames: float
    rejects: int = 0  # admission rejects in this window


@dataclass
class Verdict:
    """One rule's judgement of one window."""

    value: float
    ok: bool
    target: float
    burn_rate: Optional[float] = None


class SloRule:
    """Base class: a named objective evaluated per closed window."""

    name = "slo"
    description = ""

    def evaluate(self, window: WindowSnapshot) -> Verdict:
        raise NotImplementedError


@dataclass
class GlitchFreeRule(SloRule):
    """At least ``target`` of active clients stall-free per window."""

    target: float = 0.99

    def __post_init__(self) -> None:
        self.name = "glitch_free_fraction"
        self.description = (
            f">= {self.target:.0%} of clients glitch-free per window"
        )

    def evaluate(self, window: WindowSnapshot) -> Verdict:
        if window.clients == 0:
            return Verdict(value=1.0, ok=True, target=self.target)
        value = 1.0 - window.stalled / window.clients
        budget = 1.0 - self.target
        burn = ((1.0 - value) / budget) if budget > 0 else (
            0.0 if value >= 1.0 else float(window.stalled)
        )
        return Verdict(
            value=value, ok=value >= self.target, target=self.target,
            burn_rate=burn,
        )


@dataclass
class FailoverLatencyRule(SloRule):
    """The ``quantile`` failover latency stays under ``limit_s``.

    Evaluated over every handoff seen so far (failovers are rare; a
    10-second window almost never holds enough samples for a p99).
    """

    quantile: float = 0.99
    limit_s: float = 2.0

    def __post_init__(self) -> None:
        self.name = f"failover_p{int(self.quantile * 100)}_s"
        self.description = (
            f"p{int(self.quantile * 100)} takeover latency "
            f"<= {self.limit_s:g}s"
        )

    def evaluate(self, window: WindowSnapshot) -> Verdict:
        durations = window.failover_durations
        if not durations:
            return Verdict(value=0.0, ok=True, target=self.limit_s)
        value = quantile(durations, self.quantile)
        return Verdict(value=value, ok=value <= self.limit_s,
                       target=self.limit_s)


@dataclass
class EmergencyBandwidthRule(SloRule):
    """Emergency refill bandwidth <= ``limit`` of the base rate."""

    limit: float = 0.40

    def __post_init__(self) -> None:
        self.name = "emergency_bandwidth_share"
        self.description = (
            f"emergency bandwidth <= {self.limit:.0%} of base rate"
        )

    def evaluate(self, window: WindowSnapshot) -> Verdict:
        if window.base_frames <= 0:
            return Verdict(value=0.0, ok=True, target=self.limit)
        value = window.extra_frames / window.base_frames
        return Verdict(value=value, ok=value <= self.limit,
                       target=self.limit)


@dataclass
class AdmissionStormRule(SloRule):
    """At most ``limit`` admission rejects per window.

    A healthy overload policy sheds a trickle of load; a storm of
    rejects means capacity is mis-provisioned or the bucket is mis-
    tuned.  Not part of :func:`default_rules` — admission is opt-in,
    and runs without a policy should keep their historical summaries —
    so scenarios with an :class:`~repro.server.admission.AdmissionSpec`
    add it explicitly.
    """

    limit: int = 50

    def __post_init__(self) -> None:
        self.name = "admission_rejects_per_window"
        self.description = f"<= {self.limit} admission rejects per window"

    def evaluate(self, window: WindowSnapshot) -> Verdict:
        value = float(window.rejects)
        return Verdict(value=value, ok=value <= self.limit,
                       target=float(self.limit))


def quantile(values: List[float], q: float) -> float:
    """Nearest-rank quantile (deterministic, no interpolation)."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.999999) - 1))
    return ordered[rank]


def default_rules() -> Tuple[SloRule, ...]:
    """The paper's service level as rules (fresh instances)."""
    return (GlitchFreeRule(), FailoverLatencyRule(), EmergencyBandwidthRule())


#: What the monitor listens to; ``slo.`` is deliberately absent so the
#: monitor's own emissions can never feed back into it.
SLO_PREFIXES = ("client.", "server.", "span.", "fault.")


@dataclass
class RuleState:
    """Running account of one rule across the run."""

    rule: SloRule
    ok: bool = True
    value: float = 0.0
    breaches: int = 0
    burn_windows: int = 0
    windows: int = 0
    worst: float = 0.0

    def as_dict(self) -> Dict:
        return {
            "rule": self.rule.name,
            "description": self.rule.description,
            "ok": self.ok,
            "value": self.value,
            "target": getattr(self.rule, "target",
                              getattr(self.rule, "limit_s",
                                      getattr(self.rule, "limit", 0.0))),
            "breaches": self.breaches,
            "burn_windows": self.burn_windows,
            "windows": self.windows,
        }


class SloMonitor:
    """Evaluates SLO rules over tumbling windows, live on the bus."""

    def __init__(
        self,
        telemetry,
        rules: Optional[Tuple[SloRule, ...]] = None,
        window_s: float = 10.0,
        burn_threshold: float = 1.0,
        record_windows: bool = False,
    ) -> None:
        self.telemetry = telemetry
        self.rules = tuple(rules) if rules is not None else default_rules()
        self.window_s = float(window_s)
        self.burn_threshold = float(burn_threshold)
        #: Closed :class:`WindowSnapshot` records, kept only when
        #: ``record_windows`` is set.  Sharded runs use these to merge
        #: per-shard SLO accounting exactly (see
        #: :func:`repro.shard.merge.merge_slo_windows`): summing aligned
        #: windows across shards and re-evaluating the rules reproduces
        #: what one monitor over the combined event stream would say.
        self.record_windows = bool(record_windows)
        self.windows: List[WindowSnapshot] = []
        self.states: Dict[str, RuleState] = {
            rule.name: RuleState(rule=rule) for rule in self.rules
        }
        self.breach_events: List[Dict] = []
        self._window_start = 0.0
        # Window accumulators.
        self._clients: Set[str] = set()
        self._stalled_now: Set[str] = set()
        self._stalled_in_window: Set[str] = set()
        self._failovers: List[float] = []
        self._window_failovers = 0
        self._extra_frames = 0.0
        self._base_frames = 0.0
        self._rejects = 0
        # Per-client rate integration: [last_t, extra_fps, base_fps].
        self._rate_state: Dict[str, List[float]] = {}
        self._finished = False
        self._subscription = telemetry.subscribe(
            self._on_event, prefixes=SLO_PREFIXES
        )

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def _on_event(self, event) -> None:
        t = event.time
        while t >= self._window_start + self.window_s:
            self._close_window(self._window_start + self.window_s)
        kind = event.kind
        fields = event.fields
        if kind.startswith("client."):
            client = str(fields.get("client", "?")).split("@", 1)[0]
            self._clients.add(client)
            if kind == "client.stall.begin":
                self._stalled_now.add(client)
                self._stalled_in_window.add(client)
            elif kind == "client.stall.end":
                self._stalled_now.discard(client)
        elif kind in ("span.end", "span.abandoned"):
            if fields.get("span") in ("takeover", "rebalance"):
                duration = fields.get("duration_s")
                if duration is not None:
                    self._failovers.append(float(duration))
                    self._window_failovers += 1
        elif kind == "server.admission.reject":
            self._rejects += 1
        elif kind in ("server.rate", "server.emergency.step"):
            self._feed_rate(t, kind, fields)

    def _feed_rate(self, t: float, kind: str, fields: Dict) -> None:
        client = str(fields.get("client", "?")).split("@", 1)[0]
        self._integrate(client, t)
        rate = float(fields.get("rate_fps", 0.0))
        state = self._rate_state.get(client)
        if kind == "server.rate":
            base = float(fields.get("base_fps", rate))
            refilling = float(fields.get("emergency", 0.0)) > 0
        else:
            base = state[2] if state is not None else rate
            refilling = float(fields.get("quantity", 0.0)) > 0
        extra = max(0.0, rate - base) if refilling else 0.0
        self._rate_state[client] = [t, extra, base]

    def _integrate(self, client: str, t: float) -> None:
        state = self._rate_state.get(client)
        if state is None:
            return
        dt = t - state[0]
        if dt > 0:
            self._extra_frames += dt * state[1]
            self._base_frames += dt * state[2]
            state[0] = t

    # ------------------------------------------------------------------
    # Window evaluation
    # ------------------------------------------------------------------
    def _close_window(self, end: float) -> None:
        for client in list(self._rate_state):
            self._integrate(client, end)
        window = WindowSnapshot(
            start=self._window_start,
            end=end,
            clients=len(self._clients),
            stalled=len(self._stalled_in_window),
            failover_durations=list(self._failovers),
            window_failovers=self._window_failovers,
            extra_frames=self._extra_frames,
            base_frames=self._base_frames,
            rejects=self._rejects,
        )
        if self.record_windows:
            self.windows.append(window)
        for rule in self.rules:
            self._judge(rule, window)
        # Roll the window: stalls spanning the boundary stay counted.
        self._window_start = end
        self._stalled_in_window = set(self._stalled_now)
        self._window_failovers = 0
        self._extra_frames = 0.0
        self._base_frames = 0.0
        self._rejects = 0

    def _judge(self, rule: SloRule, window: WindowSnapshot) -> None:
        verdict = rule.evaluate(window)
        state = self.states[rule.name]
        state.windows += 1
        state.value = verdict.value
        state.worst = max(state.worst, abs(verdict.value))
        tel = self.telemetry
        if verdict.burn_rate is not None and (
            verdict.burn_rate >= self.burn_threshold
        ):
            state.burn_windows += 1
            if tel.active:
                tel.emit(
                    "slo.burn",
                    rule=rule.name,
                    burn_rate=verdict.burn_rate,
                    value=verdict.value,
                    target=verdict.target,
                    window_start=window.start,
                    window_end=window.end,
                )
        if not verdict.ok and state.ok:
            state.breaches += 1
            record = {
                "rule": rule.name,
                "value": verdict.value,
                "target": verdict.target,
                "window_start": window.start,
                "window_end": window.end,
            }
            self.breach_events.append(record)
            if tel.active:
                tel.emit("slo.breach", **record)
                tel.count("slo.breaches")
        elif verdict.ok and not state.ok:
            if tel.active:
                tel.emit(
                    "slo.recover",
                    rule=rule.name,
                    value=verdict.value,
                    target=verdict.target,
                    window_end=window.end,
                )
        state.ok = verdict.ok

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def finish(self, end_t: Optional[float] = None) -> Dict[str, Dict]:
        """Close the trailing partial window, detach, return the summary."""
        if not self._finished:
            self._finished = True
            if end_t is not None and end_t > self._window_start:
                self._close_window(end_t)
            self._subscription.close()
        return self.summary()

    def summary(self) -> Dict[str, Dict]:
        return {name: state.as_dict() for name, state in self.states.items()}

    @property
    def ok(self) -> bool:
        return all(state.ok for state in self.states.values())

    @property
    def total_breaches(self) -> int:
        return sum(state.breaches for state in self.states.values())

    @property
    def failovers(self) -> Tuple[float, ...]:
        """Every take-over/rebalance duration seen, in event order."""
        return tuple(self._failovers)


def render_slo(summary: Dict[str, Dict]) -> str:
    """A text table of SLO rule outcomes (``repro-vod report``)."""
    from repro.metrics.report import Table  # lazy: keeps import order simple

    table = Table(
        "SLO rules",
        ["rule", "objective", "state", "last value", "breaches",
         "burn windows", "windows"],
    )
    for name in sorted(summary):
        item = summary[name]
        table.add_row(
            name,
            item.get("description", ""),
            "OK" if item.get("ok", True) else "BREACH",
            f"{item.get('value', 0.0):.3f}",
            item.get("breaches", 0),
            item.get("burn_windows", 0),
            item.get("windows", 0),
        )
    return table.render()


def slo_events_from_timeline(timeline) -> List[Dict]:
    """The ``slo.*`` events recorded in an export (offline view)."""
    return [
        event for event in timeline.events
        if str(event.get("kind", "")).startswith("slo.")
    ]


def slo_from_timeline(
    timeline, rules=None, window_s: float = 10.0
) -> Dict[str, Dict]:
    """Recompute the SLO verdicts offline from a parsed export.

    Replays the export through a fresh monitor on a throwaway bus; the
    monitor is a pure fold over ``(t, kind, fields)``, so this equals
    the online summary for the same run — the determinism contract
    ``repro-vod report`` relies on.
    """
    from repro.telemetry.bus import Telemetry, TelemetryEvent

    monitor = SloMonitor(Telemetry(), rules=rules, window_s=window_s)
    last_t = 0.0
    for record in timeline.events:
        kind = str(record.get("kind", ""))
        if not kind.startswith(SLO_PREFIXES):
            continue
        t = float(record.get("t", 0.0))
        last_t = max(last_t, t)
        fields = {
            key: value for key, value in record.items()
            if key not in ("t", "kind")
        }
        monitor._on_event(TelemetryEvent(t, kind, fields))
    return monitor.finish(last_t)
