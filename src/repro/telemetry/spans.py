"""Span tracing for long-lived operations.

A span brackets an operation that starts in one component and may end
in another — a client session, a takeover (opened when a server
crashes, closed when the adopter resumes the stream), a rebalance
handoff.  Spans emit paired ``span.begin`` / ``span.end`` events on the
bus and the open-span registry on :class:`~repro.telemetry.bus.Telemetry`
lets the closing component find a span it did not open.

Must not import the rest of :mod:`repro` (cycle: the sim kernel imports
the telemetry bus).
"""

from __future__ import annotations

from typing import Optional


class Span:
    """One in-flight (or finished) operation on the telemetry bus.

    Created via :meth:`Telemetry.span`; call :meth:`end` exactly once.
    ``duration`` is ``None`` until the span ends.
    """

    __slots__ = ("telemetry", "kind", "key", "start", "attrs", "duration")

    def __init__(self, telemetry, kind: str, key: str, start: float, attrs) -> None:
        self.telemetry = telemetry
        self.kind = kind
        self.key = key
        self.start = start
        self.attrs = attrs
        self.duration: Optional[float] = None

    @property
    def ended(self) -> bool:
        return self.duration is not None

    def end(self, **attrs) -> float:
        """Close the span; emits ``span.end`` and returns the duration.

        Idempotent: a second call returns the recorded duration without
        re-emitting.  Safe to call after the last subscriber detached
        (the registry entry is still cleaned up; no event is emitted).
        """
        if self.duration is not None:
            return self.duration
        telemetry = self.telemetry
        self.duration = telemetry.clock() - self.start
        telemetry._forget_span(self)
        if telemetry.active:
            telemetry.emit(
                "span.end",
                span=self.kind,
                key=self.key,
                start=self.start,
                duration_s=self.duration,
                **dict(self.attrs, **attrs),
            )
        return self.duration

    def abandon(self, reason: str = "run-end", **attrs) -> float:
        """Close the span as *abandoned* (the operation never finished).

        Emits ``span.abandoned`` with the duration so far instead of
        ``span.end`` — a takeover span still open when the simulation
        stops means the adopter never resumed the stream, and that story
        must survive into the export rather than vanish.  Idempotent
        like :meth:`end`; a span already ended is left untouched.
        """
        if self.duration is not None:
            return self.duration
        telemetry = self.telemetry
        self.duration = telemetry.clock() - self.start
        telemetry._forget_span(self)
        if telemetry.active:
            # Span attrs may themselves carry a ``reason`` (a takeover
            # records why it started); the abandonment reason wins on
            # the span.abandoned record, so merge rather than pass both
            # as keywords.
            fields = dict(self.attrs)
            fields.update(attrs)
            fields["reason"] = reason
            telemetry.emit(
                "span.abandoned",
                span=self.kind,
                key=self.key,
                start=self.start,
                duration_s=self.duration,
                **fields,
            )
        return self.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"dur={self.duration:.3f}s" if self.ended else "open"
        return f"<Span {self.kind}:{self.key} t0={self.start:.3f} {state}>"
