"""Live terminal dashboard state for ``repro-vod watch``.

A :class:`WatchState` is a bus subscriber that folds the event stream
into the small amount of state a terminal dashboard needs — per-client
status and buffer level, the buffer-occupancy distribution, spans still
in flight, SLO rule state and the last few notable events — and
:func:`render_watch` draws one frame of it as plain text.

The watcher follows the same contract as every other observer: it never
schedules simulation events and never draws randomness, so watching a
run cannot change it.  ``repro-vod watch`` drives the simulator in
short ``run_until`` slices and redraws between slices; the state here
is just a fold over events, so it works equally against a live bus or
a replayed export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry.flight import is_trigger

#: Everything the dashboard listens to.
WATCH_PREFIXES = (
    "client.", "server.", "gcs.view", "fault.", "span.", "metric.sample",
    "slo.", "invariant.",
)

#: How many recent notable events a frame shows.
RECENT_EVENTS = 8

_NOTABLE = (
    "fault.", "gcs.view.install", "server.crash", "server.shutdown",
    "server.session", "client.migrate", "client.stall", "client.resume",
    "slo.", "invariant.",
)


@dataclass
class ClientView:
    """One row of the dashboard's client table."""

    name: str
    buffer: Optional[float] = None
    stalled: bool = False
    stalls: int = 0
    migrations: int = 0
    skipped: int = 0
    server: str = ""
    playing: bool = False
    done: bool = False

    @property
    def status(self) -> str:
        if self.done:
            return "done"
        if self.stalled:
            return "STALL"
        if self.playing:
            return "play"
        return "start"


class WatchState:
    """Folds bus events into one dashboard frame's worth of state."""

    def __init__(self, telemetry, slo_monitor=None,
                 flight_recorder=None) -> None:
        self.telemetry = telemetry
        self.slo_monitor = slo_monitor
        #: Optional live :class:`~repro.telemetry.flight.FlightRecorder`
        #: — the incident strip reads its closed-incident count and open
        #: capture window; without one the strip falls back to the
        #: fold's own trigger counters.
        self.flight_recorder = flight_recorder
        self.now = 0.0
        self.events_seen = 0
        self.clients: Dict[str, ClientView] = {}
        self.open_spans: Dict[Tuple[str, str], float] = {}
        self.slo: Dict[str, Dict] = {}
        self.recent: List[str] = []
        self.faults = 0
        self.views_installed = 0
        self.triggers_seen = 0
        self.last_trigger: Optional[str] = None
        self.last_breach_rule: Optional[str] = None
        self._subscription = telemetry.subscribe(
            self._on_event, prefixes=WATCH_PREFIXES
        )

    def close(self) -> None:
        self._subscription.close()

    # ------------------------------------------------------------------
    # Fold
    # ------------------------------------------------------------------
    def client(self, name: object) -> ClientView:
        short = str(name).split("@", 1)[0]
        view = self.clients.get(short)
        if view is None:
            view = self.clients[short] = ClientView(name=short)
        return view

    def _on_event(self, event) -> None:
        self.events_seen += 1
        self.now = max(self.now, event.time)
        kind = event.kind
        fields = event.fields
        if kind == "metric.sample":
            # The dashboard's buffer column is frames; the byte-
            # denominated hardware series would drown it out.
            series = str(fields.get("series", ""))
            if series in ("combined_frames", "software_buffer_frames"):
                view = self.client(fields.get("owner", "?"))
                if series == "combined_frames" or view.buffer is None:
                    view.buffer = float(fields.get("value", 0.0))
            return
        if kind.startswith("client."):
            view = self.client(fields.get("client", "?"))
            if kind == "client.stall.begin":
                view.stalled = True
                view.stalls += 1
            elif kind == "client.stall.end":
                view.stalled = False
            elif kind == "client.migrate":
                if str(fields.get("from_server")) not in ("None", ""):
                    view.migrations += 1
                view.server = str(fields.get("to_server", view.server))
            elif kind == "client.skip":
                view.skipped = int(fields.get("total", view.skipped))
            elif kind == "client.playback.start":
                view.playing = True
        elif kind == "span.begin":
            self.open_spans[
                (str(fields.get("span")), str(fields.get("key")))
            ] = event.time
        elif kind in ("span.end", "span.abandoned"):
            ident = (str(fields.get("span")), str(fields.get("key")))
            self.open_spans.pop(ident, None)
            if fields.get("span") == "client.session":
                self.client(fields.get("key", "?")).done = (
                    kind == "span.end"
                )
        elif kind == "server.session.start":
            view = self.client(fields.get("client", "?"))
            view.server = str(fields.get("server", view.server))
        elif kind == "fault.fired":
            self.faults += 1
        elif kind == "gcs.view.install":
            self.views_installed += 1
        elif kind.startswith("slo."):
            rule = str(fields.get("rule", "?"))
            item = self.slo.setdefault(
                rule, {"ok": True, "breaches": 0, "burns": 0, "value": 0.0}
            )
            item["value"] = float(fields.get("value", 0.0))
            if kind == "slo.breach":
                item["ok"] = False
                item["breaches"] += 1
            elif kind == "slo.recover":
                item["ok"] = True
            elif kind == "slo.burn":
                item["burns"] += 1
        if is_trigger(kind, fields):
            self.triggers_seen += 1
            self.last_trigger = f"{kind}@{event.time:.2f}s"
            if kind == "slo.breach":
                self.last_breach_rule = str(fields.get("rule", "?"))
        if kind.startswith(_NOTABLE):
            detail = " ".join(
                f"{k}={v}" for k, v in fields.items()
                if k not in ("start",)
            )
            self.recent.append(f"{event.time:9.3f}  {kind}  {detail}")
            del self.recent[:-RECENT_EVENTS]

    # ------------------------------------------------------------------
    # Derived
    # ------------------------------------------------------------------
    def buffer_distribution(self, bins: int = 8) -> List[Tuple[str, int]]:
        """Histogram of current client buffer levels (frames)."""
        levels = [
            view.buffer for view in self.clients.values()
            if view.buffer is not None
        ]
        if not levels:
            return []
        top = max(max(levels), 1.0)
        width = top / bins
        counts = [0] * bins
        for level in levels:
            slot = min(bins - 1, int(level / width))
            counts[slot] += 1
        return [
            (f"{i * width:5.0f}-{(i + 1) * width:5.0f}", counts[i])
            for i in range(bins)
        ]

    def incident_strip(self) -> Optional[str]:
        """One status line for the incident strip (None when quiet).

        With a live recorder attached: closed-incident count plus the
        open capture window (trigger, folded trigger count, capture
        deadline).  Always: the fold's trigger counter, the last
        trigger and the last breached SLO rule.
        """
        recorder = self.flight_recorder
        closed = len(recorder.incidents) if recorder is not None else None
        open_trigger = (
            recorder.open_trigger if recorder is not None else None
        )
        if not self.triggers_seen and not closed:
            return None
        parts: List[str] = []
        if closed is not None:
            parts.append(f"closed={closed}")
        if open_trigger is not None:
            parts.append(
                f"OPEN {open_trigger['kind']}@{open_trigger['t']:.2f}s "
                f"({open_trigger['triggers']} trigger(s), capture to "
                f"{open_trigger['deadline']:.2f}s)"
            )
        parts.append(f"triggers={self.triggers_seen}")
        if self.last_trigger:
            parts.append(f"last={self.last_trigger}")
        if self.last_breach_rule:
            parts.append(f"last breach rule={self.last_breach_rule}")
        return "incidents: " + "  ".join(parts)

    def slo_rows(self) -> List[Tuple[str, str, str]]:
        """(rule, state, value) rows — live monitor first, else events."""
        if self.slo_monitor is not None:
            return [
                (name, "OK" if st.ok else "BREACH", f"{st.value:.3f}")
                for name, st in sorted(self.slo_monitor.states.items())
            ]
        return [
            (rule, "OK" if item["ok"] else "BREACH", f"{item['value']:.3f}")
            for rule, item in sorted(self.slo.items())
        ]


def render_watch(state: WatchState, max_clients: int = 12) -> str:
    """One text frame of the live dashboard."""
    lines: List[str] = []
    stalled = sum(1 for v in state.clients.values() if v.stalled)
    done = sum(1 for v in state.clients.values() if v.done)
    lines.append(
        f"t={state.now:8.2f}s  clients={len(state.clients)} "
        f"(stalled={stalled} done={done})  faults={state.faults} "
        f"views={state.views_installed}  events={state.events_seen}"
    )

    slo_rows = state.slo_rows()
    if slo_rows:
        lines.append("")
        lines.append("SLO:")
        for rule, status, value in slo_rows:
            marker = "  " if status == "OK" else "!!"
            lines.append(f"  {marker} {rule:<28} {status:<7} {value}")

    strip = state.incident_strip()
    if strip:
        if not slo_rows:
            lines.append("")
        lines.append(strip)

    dist = state.buffer_distribution()
    if dist:
        lines.append("")
        lines.append("buffer occupancy (frames -> clients):")
        peak = max(count for _, count in dist) or 1
        for label, count in dist:
            bar = "#" * int(round(24 * count / peak)) if count else ""
            lines.append(f"  {label} | {bar} {count or ''}")

    if state.open_spans:
        lines.append("")
        lines.append("active spans:")
        ordered = sorted(state.open_spans.items(), key=lambda kv: kv[1])
        for (span, key), start in ordered[:10]:
            lines.append(
                f"  {span:<16} {key:<16} open {state.now - start:7.2f}s"
            )

    worst = sorted(
        state.clients.values(),
        key=lambda v: (not v.stalled, -(v.stalls + v.migrations), v.name),
    )
    if worst:
        lines.append("")
        lines.append(
            f"clients (worst {min(max_clients, len(worst))} of {len(worst)}):"
        )
        lines.append(
            "  name        status  buffer  stalls  migr  skip  server"
        )
        for view in worst[:max_clients]:
            buffer = "-" if view.buffer is None else f"{view.buffer:6.0f}"
            lines.append(
                f"  {view.name:<10}  {view.status:<6} {buffer:>7} "
                f"{view.stalls:>7} {view.migrations:>5} {view.skipped:>5}  "
                f"{view.server}"
            )

    if state.recent:
        lines.append("")
        lines.append("recent events:")
        lines.extend(f"  {line}" for line in state.recent)

    return "\n".join(lines)
