"""The flight recorder: bounded always-on capture with incident scoping.

At million-viewer scale an exhaustive JSONL export of a run is
gigabytes — yet the moments the paper cares about (a crash, the
suspicion, the view agreement, the takeover, the client's resume) span
seconds.  A :class:`FlightRecorder` subscribes to the
:class:`~repro.telemetry.bus.Telemetry` bus like any other observer and
keeps only what a postmortem needs:

* **Ring buffers** — one bounded ``deque`` per event kind, with an
  optional sim-time horizon, so steady-state history costs O(budget)
  memory no matter how long the run is.
* **Deterministic sampling** — high-volume kinds keep 1-in-N by a
  per-kind modular counter (no RNG; the retained subset is a pure
  function of the event stream).  ``fault.*``, ``slo.*``, ``span.*``
  and ``invariant.*`` events are never sampled out.
* **Trigger rules** — an ``slo.breach``, a fault injection, an
  invariant violation, a server crash or an abandoned takeover span
  freezes the pre-trigger window from the rings and opens a
  full-fidelity capture window; overlapping triggers extend the same
  window.  Each closed window becomes an :class:`Incident` carrying the
  causal chains (:class:`~repro.telemetry.causal.TraceGraph`), the
  exact detect+agree+redistribute failover breakdowns, per-client QoE
  impact attribution and a timeline excerpt.
* **Self-metering** — the recorder counts what it saw, retained,
  sampled out and evicted per kind and publishes
  ``telemetry.flight.*`` metrics, so its own memory footprint is a
  first-class, gated number.

The recorder follows PR 2's observer contract: it never draws
randomness, schedules nothing, and emits nothing while the run is
live — enabling it cannot perturb simulation outcomes (same seed ⇒
byte-identical client stats, recorder on or off).
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.bus import Telemetry, TelemetryEvent

#: What the recorder subscribes to: every application-level kind (the
#: exporter's default set) plus invariant violations.  The two firehose
#: kinds (``sim.*``, ``net.deliver``) stay out by construction.
FLIGHT_PREFIXES = (
    "client.", "server.", "gcs.", "net.drop", "fault.", "span.", "metric.",
    "slo.", "invariant.",
)

#: Kinds never sampled out (still ring-bounded: memory wins over
#: completeness, but these kinds are low-volume by design).
ALWAYS_RETAIN_PREFIXES = ("fault.", "slo.", "span.", "invariant.")

#: Rough per-record memory estimate (dict + a handful of small values);
#: used by the self-metering byte gauge, not for eviction decisions.
_RECORD_OVERHEAD_BYTES = 96
_FIELD_BYTES = 48


@dataclass(frozen=True)
class FlightRecorderConfig:
    """Retention budgets, sampling rates and trigger windows.

    Everything here is deterministic: budgets and sampling are pure
    functions of the event stream, and windows are in *sim* time, so a
    fixed seed produces the same incidents run after run.
    """

    #: Ring capacity per event kind (events), unless overridden.
    default_budget: int = 512
    #: Per-kind-prefix budget overrides (longest matching prefix wins).
    budgets: Dict[str, int] = field(default_factory=dict)
    #: Optional sim-time horizon: ring entries older than ``now -
    #: horizon_s`` are evicted lazily as new events of that kind arrive.
    horizon_s: Optional[float] = None
    #: Keep 1-in-N per kind prefix (longest match wins; 1 = keep all).
    #: ``metric.sample`` is the classic firehose here — one record per
    #: client per sampling tick.
    sample_every: Dict[str, int] = field(
        default_factory=lambda: {"metric.": 8}
    )
    #: Pre-trigger window frozen from the rings, in sim seconds.
    pre_trigger_s: float = 5.0
    #: Full-fidelity capture window after the last trigger, sim seconds.
    post_trigger_s: float = 5.0
    #: Hard cap on captured events per incident (excess is counted as
    #: truncated, never silently dropped).
    max_capture_events: int = 50_000
    #: Hard cap on assembled incidents (further triggers are counted).
    max_incidents: int = 16
    #: Distinct triggers recorded per incident before folding.
    max_triggers_per_incident: int = 64
    #: Failover breakdowns stored per incident (total count kept).
    max_breakdowns: int = 500
    #: Causal chains summarized per incident.
    max_chains: int = 8
    #: Timeline-excerpt rows stored per incident.
    excerpt_limit: int = 80
    #: Clients listed in the QoE-impact attribution (worst first).
    qoe_top_k: int = 10

    def budget_for(self, kind: str) -> int:
        best, best_len = self.default_budget, -1
        for prefix, budget in self.budgets.items():
            if kind.startswith(prefix) and len(prefix) > best_len:
                best, best_len = budget, len(prefix)
        return max(1, int(best))

    def sample_rate_for(self, kind: str) -> int:
        if kind.startswith(ALWAYS_RETAIN_PREFIXES):
            return 1
        best, best_len = 1, -1
        for prefix, rate in self.sample_every.items():
            if kind.startswith(prefix) and len(prefix) > best_len:
                best, best_len = rate, len(prefix)
        return max(1, int(best))


def is_trigger(kind: str, fields: Dict) -> bool:
    """The trigger rules: the moments that open a capture window.

    ``server.crash`` is a trigger in its own right (the scale rig
    crashes servers directly, without a :class:`FaultInjector`), as is
    an abandoned *takeover* span — an adopter that never resumed the
    stream is precisely the story a postmortem must keep.
    """
    if kind in ("slo.breach", "fault.fired", "invariant.violation",
                "server.crash"):
        return True
    if kind == "span.abandoned" and fields.get("span") == "takeover":
        return True
    return False


def _trigger_detail(kind: str, fields: Dict) -> str:
    """One human line identifying a trigger (for strips and reports)."""
    if kind == "slo.breach":
        return f"rule={fields.get('rule', '?')} value={fields.get('value')}"
    if kind == "fault.fired":
        return f"action={fields.get('action', '?')}"
    if kind == "invariant.violation":
        return f"rule={fields.get('rule', '?')} client={fields.get('client')}"
    if kind == "server.crash":
        return f"server={fields.get('server', '?')}"
    if kind == "span.abandoned":
        return f"span=takeover key={fields.get('key', '?')}"
    return ""


@dataclass
class Incident:
    """One assembled capture window: the *why*, bounded and portable.

    Everything is plain data (``as_dict``/``from_dict`` round-trip), so
    incidents cross process boundaries from spawned shard workers and
    serialize into benchmark JSON unchanged.  The breakdowns inherit
    the causal layer's exactness guarantee: ``detect_s + agree_s +
    redistribute_s == total_s`` (the takeover span duration) by
    construction.
    """

    id: str
    trigger_kind: str
    trigger_t: float
    trigger_detail: str = ""
    shard: Optional[str] = None
    window_start: float = 0.0
    window_end: float = 0.0
    triggers: List[Dict] = field(default_factory=list)
    n_triggers: int = 0
    pre_records: int = 0
    captured_records: int = 0
    truncated_records: int = 0
    breakdowns: List[Dict] = field(default_factory=list)
    n_breakdowns: int = 0
    chains: List[Dict] = field(default_factory=list)
    n_chains: int = 0
    qoe: Dict = field(default_factory=dict)
    excerpt: List[Dict] = field(default_factory=list)

    def as_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "Incident":
        names = {f for f in cls.__dataclass_fields__}  # noqa: C401
        return cls(**{k: v for k, v in payload.items() if k in names})


class _Capture:
    """An open capture window (internal state between trigger and close)."""

    __slots__ = (
        "trigger_kind", "trigger_t", "trigger_detail", "deadline",
        "pre", "records", "truncated", "triggers", "n_triggers",
    )

    def __init__(self, trigger_kind, trigger_t, detail, deadline, pre):
        self.trigger_kind = trigger_kind
        self.trigger_t = trigger_t
        self.trigger_detail = detail
        self.deadline = deadline
        self.pre: List[Tuple[int, Dict]] = pre
        self.records: List[Tuple[int, Dict]] = []
        self.truncated = 0
        self.triggers: List[Dict] = [
            {"t": trigger_t, "kind": trigger_kind, "detail": detail}
        ]
        self.n_triggers = 1


class FlightRecorder:
    """Bounded always-on capture: rings + triggers + incident assembly.

    Usage::

        recorder = FlightRecorder(sim.telemetry)
        ...  # run the simulation
        incidents = recorder.finish()

    A pure observer: subscribing flips ``telemetry.active`` like any
    exporter would, but the recorder itself emits nothing, draws no
    randomness and schedules no events — PR 2's non-perturbation
    contract holds by construction.
    """

    def __init__(
        self,
        telemetry: Optional[Telemetry],
        config: Optional[FlightRecorderConfig] = None,
    ) -> None:
        self.telemetry = telemetry
        self.config = config or FlightRecorderConfig()
        self.incidents: List[Incident] = []
        # Self-metering (per kind).
        self.seen: Dict[str, int] = {}
        self.retained: Dict[str, int] = {}
        self.sampled_out: Dict[str, int] = {}
        self.evicted: Dict[str, int] = {}
        self.triggers_seen = 0
        self.triggers_dropped = 0
        self.captured_total = 0
        # Internal state.
        self._rings: Dict[str, Deque[Tuple[int, Dict]]] = {}
        self._seq = 0
        self._last_t = 0.0
        self._capture: Optional[_Capture] = None
        self._finished = False
        self._subscription = None
        if telemetry is not None:
            self._subscription = telemetry.subscribe(
                self._on_event, prefixes=FLIGHT_PREFIXES
            )

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def _on_event(self, event: TelemetryEvent) -> None:
        self.feed(event.time, event.kind, event.fields)

    def feed(self, t: float, kind: str, fields: Dict) -> None:
        """Process one event (the subscriber path and offline replay)."""
        config = self.config
        self.seen[kind] = self.seen.get(kind, 0) + 1
        self._last_t = t if t > self._last_t else self._last_t

        # A capture whose post-trigger window has elapsed closes before
        # this event is considered (it may itself be a new trigger).
        capture = self._capture
        if capture is not None and t > capture.deadline:
            self._close_capture(capture.deadline)
            capture = None

        if is_trigger(kind, fields):
            self.triggers_seen += 1
            detail = _trigger_detail(kind, fields)
            if capture is not None:
                capture.deadline = max(
                    capture.deadline, t + config.post_trigger_s
                )
                capture.n_triggers += 1
                if len(capture.triggers) < config.max_triggers_per_incident:
                    capture.triggers.append(
                        {"t": t, "kind": kind, "detail": detail}
                    )
            elif len(self.incidents) >= config.max_incidents:
                self.triggers_dropped += 1
            else:
                capture = self._capture = _Capture(
                    kind, t, detail, t + config.post_trigger_s,
                    self._snapshot_window(t - config.pre_trigger_s),
                )

        record = None
        if capture is not None:
            record = self._record(t, kind, fields)
            if len(capture.records) < config.max_capture_events:
                capture.records.append((self._seq, record))
                self.captured_total += 1
            else:
                capture.truncated += 1

        # Ring retention is independent of capture state: the sampling
        # counters advance on every event, so what the rings hold is a
        # pure function of the stream, capture windows or not.
        rate = config.sample_rate_for(kind)
        if rate > 1 and (self.seen[kind] - 1) % rate:
            self.sampled_out[kind] = self.sampled_out.get(kind, 0) + 1
            return
        ring = self._rings.get(kind)
        if ring is None:
            ring = self._rings[kind] = deque(maxlen=config.budget_for(kind))
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.evicted[kind] = self.evicted.get(kind, 0) + 1
        if record is None:
            record = self._record(t, kind, fields)
        ring.append((self._seq, record))
        self.retained[kind] = self.retained.get(kind, 0) + 1
        if config.horizon_s is not None:
            floor = t - config.horizon_s
            while ring and ring[0][1]["t"] < floor:
                ring.popleft()
                self.evicted[kind] = self.evicted.get(kind, 0) + 1

    def _record(self, t: float, kind: str, fields: Dict) -> Dict:
        self._seq += 1
        record = dict(fields)
        record["t"] = t
        record["kind"] = kind
        return record

    def _snapshot_window(self, since_t: float) -> List[Tuple[int, Dict]]:
        """Freeze every ring entry at/after ``since_t``, emission order."""
        frozen: List[Tuple[int, Dict]] = []
        for ring in self._rings.values():
            for seq, record in ring:
                if record["t"] >= since_t:
                    frozen.append((seq, record))
        frozen.sort(key=lambda item: item[0])
        return frozen

    # ------------------------------------------------------------------
    # Incident assembly
    # ------------------------------------------------------------------
    def _close_capture(self, end_t: float) -> None:
        capture, self._capture = self._capture, None
        if capture is None:
            return
        config = self.config
        records = [rec for _, rec in capture.pre] + [
            rec for _, rec in capture.records
        ]
        window_start = (
            records[0]["t"] if records
            else capture.trigger_t - config.pre_trigger_s
        )

        from repro.telemetry.causal import (
            TraceGraph, critical_path, failover_breakdowns,
        )

        graph = TraceGraph(records)
        breakdowns = failover_breakdowns(graph)
        chains = graph.chains()
        chain_summaries = []
        for chain in sorted(
            chains, key=lambda c: (-len(c.events), c.start, c.cause)
        )[:config.max_chains]:
            chain_summaries.append({
                "cause": chain.cause,
                "events": len(chain.events),
                "start": chain.start,
                "end": chain.end,
                "path": [
                    {"t": e.get("t"), "kind": e.get("kind"),
                     "detail": _brief(e)}
                    for e in critical_path(chain)
                ],
            })

        self.incidents.append(Incident(
            id=f"incident#{len(self.incidents) + 1}",
            trigger_kind=capture.trigger_kind,
            trigger_t=capture.trigger_t,
            trigger_detail=capture.trigger_detail,
            window_start=window_start,
            window_end=end_t,
            triggers=capture.triggers,
            n_triggers=capture.n_triggers,
            pre_records=len(capture.pre),
            captured_records=len(capture.records),
            truncated_records=capture.truncated,
            breakdowns=[asdict(b) for b in breakdowns[:config.max_breakdowns]],
            n_breakdowns=len(breakdowns),
            chains=chain_summaries,
            n_chains=len(chains),
            qoe=_qoe_impact(records, end_t, config.qoe_top_k),
            excerpt=_excerpt(records, config.excerpt_limit),
        ))

    # ------------------------------------------------------------------
    # Lifecycle + self-metering
    # ------------------------------------------------------------------
    def finish(self, end_t: Optional[float] = None) -> List[Incident]:
        """Detach, close any open capture, publish ``telemetry.flight.*``
        metrics, and return the assembled incidents.  Idempotent."""
        if self._finished:
            return self.incidents
        self._finished = True
        if self._subscription is not None:
            self._subscription.close()
        if self._capture is not None:
            close_t = self._capture.deadline
            if end_t is not None:
                close_t = min(close_t, max(end_t, self._capture.trigger_t))
            self._close_capture(close_t)
        if self.telemetry is not None:
            self._publish_metrics(self.telemetry.metrics)
        return self.incidents

    def _publish_metrics(self, metrics) -> None:
        metrics.counter("telemetry.flight.events.seen").inc(
            sum(self.seen.values())
        )
        metrics.counter("telemetry.flight.events.retained").inc(
            sum(self.retained.values())
        )
        metrics.counter("telemetry.flight.events.sampled_out").inc(
            sum(self.sampled_out.values())
        )
        metrics.counter("telemetry.flight.events.evicted").inc(
            sum(self.evicted.values())
        )
        metrics.counter("telemetry.flight.events.captured").inc(
            self.captured_total
        )
        metrics.counter("telemetry.flight.incidents").inc(
            len(self.incidents)
        )
        metrics.counter("telemetry.flight.triggers.seen").inc(
            self.triggers_seen
        )
        metrics.counter("telemetry.flight.triggers.dropped").inc(
            self.triggers_dropped
        )
        metrics.gauge("telemetry.flight.buffer.occupancy").set(
            self.occupancy()
        )
        metrics.gauge("telemetry.flight.buffer.estimated_bytes").set(
            self.estimated_bytes()
        )

    def occupancy(self) -> int:
        """Events currently held across every ring buffer."""
        return sum(len(ring) for ring in self._rings.values())

    def capture_occupancy(self) -> int:
        """Events held by the open capture window (0 when none)."""
        capture = self._capture
        if capture is None:
            return 0
        return len(capture.pre) + len(capture.records)

    def estimated_bytes(self) -> int:
        """Order-of-magnitude memory estimate for rings + open capture.

        A flat per-record model (overhead + per-field cost) — cheap to
        compute over the bounded buffers and stable across Python
        versions, which is what a budget gate needs.
        """
        total = 0
        for ring in self._rings.values():
            for _, record in ring:
                total += _RECORD_OVERHEAD_BYTES + _FIELD_BYTES * len(record)
        capture = self._capture
        if capture is not None:
            for _, record in capture.pre:
                total += _RECORD_OVERHEAD_BYTES + _FIELD_BYTES * len(record)
            for _, record in capture.records:
                total += _RECORD_OVERHEAD_BYTES + _FIELD_BYTES * len(record)
        return total

    def ring_budget(self) -> int:
        """Total configured ring capacity (events) across kinds seen.

        The budget gate's counterpart to :meth:`occupancy`: occupancy
        can never exceed this, by ``deque(maxlen)`` construction — the
        gate asserts it anyway as an end-to-end check."""
        config = self.config
        return sum(
            ring.maxlen or config.budget_for(kind)
            for kind, ring in self._rings.items()
        )

    def max_ring_bytes(self) -> int:
        """The configured worst-case ring footprint (budget × kinds seen)."""
        config = self.config
        total = 0
        for kind, ring in self._rings.items():
            budget = ring.maxlen or config.budget_for(kind)
            total += budget * (_RECORD_OVERHEAD_BYTES + _FIELD_BYTES * 8)
        return total

    def metering(self) -> Dict:
        """Self-metering snapshot (plain data; crosses process bounds)."""
        return {
            "seen": dict(self.seen),
            "retained": dict(self.retained),
            "sampled_out": dict(self.sampled_out),
            "evicted": dict(self.evicted),
            "occupancy": self.occupancy(),
            "capture_occupancy": self.capture_occupancy(),
            "estimated_bytes": self.estimated_bytes(),
            "ring_budget": self.ring_budget(),
            "max_ring_bytes": self.max_ring_bytes(),
            "captured_total": self.captured_total,
            "triggers_seen": self.triggers_seen,
            "triggers_dropped": self.triggers_dropped,
            "incidents": len(self.incidents),
        }

    # Live views (the watch dashboard's incident strip).
    @property
    def open_trigger(self) -> Optional[Dict]:
        capture = self._capture
        if capture is None:
            return None
        return {
            "t": capture.trigger_t,
            "kind": capture.trigger_kind,
            "detail": capture.trigger_detail,
            "deadline": capture.deadline,
            "triggers": capture.n_triggers,
        }


# ----------------------------------------------------------------------
# Incident internals (pure functions over captured records)
# ----------------------------------------------------------------------
def _brief(event: Dict) -> str:
    parts = []
    for key in ("server", "client", "key", "span", "rule", "action", "view"):
        if key in event:
            parts.append(f"{key}={event[key]}")
    return " ".join(parts)


def _excerpt(records: Sequence[Dict], limit: int) -> List[Dict]:
    """The notable-timeline slice of the window, head+tail bounded."""
    from repro.telemetry.report import is_timeline_kind

    notable = [r for r in records if is_timeline_kind(str(r.get("kind", "")))]
    if len(notable) <= limit:
        return list(notable)
    head = limit // 2
    tail = limit - head
    return list(notable[:head]) + list(notable[-tail:])


def _qoe_impact(records: Sequence[Dict], end_t: float, top_k: int) -> Dict:
    """Which clients' scorecards the window hit, and by how much.

    A window-scoped fold over the captured client events, penalized
    with the scorecard's window-computable components (2/stall cap 20,
    1/migration cap 5, 3/reject cap 35).  The rebuffer-ratio component
    needs whole-session watch time, so the raw ``stall_s`` is reported
    instead of folded into the penalty.
    """
    impact: Dict[str, Dict] = {}
    stall_since: Dict[str, float] = {}

    def entry(client: object) -> Dict:
        name = str(client).split("@", 1)[0]
        item = impact.get(name)
        if item is None:
            item = impact[name] = {
                "client": name, "stalls": 0, "stall_s": 0.0,
                "migrations": 0, "resumes": 0, "rejects": 0,
            }
        return item

    for record in records:
        kind = record.get("kind", "")
        if kind == "client.stall.begin":
            item = entry(record.get("client", "?"))
            item["stalls"] += 1
            stall_since[item["client"]] = float(record.get("t", end_t))
        elif kind == "client.stall.end":
            item = entry(record.get("client", "?"))
            since = stall_since.pop(item["client"], None)
            if since is not None:
                item["stall_s"] += float(record.get("t", end_t)) - since
        elif kind == "client.migrate":
            if str(record.get("from_server")) not in ("None", ""):
                entry(record.get("client", "?"))["migrations"] += 1
        elif kind == "client.resume":
            entry(record.get("client", "?"))["resumes"] += 1
        elif kind == "server.admission.reject":
            entry(record.get("client", "?"))["rejects"] += 1
    for name, since in stall_since.items():
        impact[name]["stall_s"] += max(0.0, end_t - since)

    for item in impact.values():
        item["penalty"] = (
            min(20.0, 2.0 * item["stalls"])
            + min(5.0, float(item["migrations"]))
            + min(35.0, 3.0 * item["rejects"])
        )
    ranked = sorted(
        impact.values(), key=lambda i: (-i["penalty"], i["client"])
    )
    return {
        "clients_hit": len(impact),
        "totals": {
            "stalls": sum(i["stalls"] for i in impact.values()),
            "stall_s": sum(i["stall_s"] for i in impact.values()),
            "migrations": sum(i["migrations"] for i in impact.values()),
            "resumes": sum(i["resumes"] for i in impact.values()),
            "rejects": sum(i["rejects"] for i in impact.values()),
        },
        "top": ranked[:top_k],
    }


def incidents_from_records(
    records: Sequence[Dict],
    config: Optional[FlightRecorderConfig] = None,
) -> List[Incident]:
    """Offline replay: rebuild incidents from an exported event stream.

    Feeds a fresh detached recorder the same ``(t, kind, fields)``
    triples the subscriber path saw, so incidents recomputed from a
    full JSONL export match the live recorder's (modulo events the
    export itself filtered out).
    """
    recorder = FlightRecorder(None, config)
    for record in records:
        kind = str(record.get("kind", ""))
        if kind in ("meta", "summary") or not kind.startswith(FLIGHT_PREFIXES):
            continue
        fields = {k: v for k, v in record.items() if k not in ("t", "kind")}
        recorder.feed(float(record.get("t", 0.0)), kind, fields)
    return recorder.finish()
