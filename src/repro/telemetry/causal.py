"""Causal tracing: reconstruct *why* from an exported event stream.

The bus threads a cheap ``cause`` id through the failover event path —
fault action → server crash → failure-detector suspicion → GCS view
change → take-over span → stream resume → client buffer recovery.  Two
propagation mechanisms, both costing nothing while telemetry is off:

* **ambient cause** (``Telemetry.cause``): a synchronous episode (a
  fault handler firing, a view installing and its callbacks running)
  sets the ambient id so every emission inside the call chain can tag
  itself;
* **entity attribution** (``Telemetry.attribute`` / ``cause_for``): a
  cause crossing an *asynchronous* boundary is parked on the affected
  entity (``node:3``, ``client:client0@5``) and looked back up when the
  delayed consequence fires (missed heartbeats, a frame arriving at the
  client from its new server).

This module is the offline half: :func:`load_trace_graph` rebuilds the
cause chains from a JSONL export, and :func:`failover_breakdowns`
extracts the paper's take-over story as a critical path — how much of
each failover went to *detection* (crash → suspicion), *agreement*
(suspicion → view install) and *redistribution* (view install → the
adopting server's resume), with the client-visible *resume* tail
(take-over → first frame from the new server) reported alongside.  The
three in-span segments sum to the take-over span duration by
construction, which the tests pin down.

Pure stdlib + :mod:`repro.telemetry` internals; safe to import from
anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class CausalChain:
    """All exported events tagged with one cause id, in time order."""

    cause: str
    events: List[Dict] = field(default_factory=list)

    @property
    def kinds(self) -> List[str]:
        return [event.get("kind", "?") for event in self.events]

    @property
    def start(self) -> float:
        return self.events[0]["t"] if self.events else 0.0

    @property
    def end(self) -> float:
        return self.events[-1]["t"] if self.events else 0.0

    def first(self, *kinds: str) -> Optional[Dict]:
        """The earliest event whose kind starts with any of ``kinds``."""
        for event in self.events:
            if str(event.get("kind", "")).startswith(tuple(kinds)):
                return event
        return None

    def all(self, *kinds: str) -> List[Dict]:
        return [
            event for event in self.events
            if str(event.get("kind", "")).startswith(tuple(kinds))
        ]


class TraceGraph:
    """Cause-indexed view of an exported run.

    Nodes are the exported event records; edges are implicit — events
    sharing a ``cause`` field belong to one :class:`CausalChain`,
    ordered by virtual time (ties keep file order, which is emission
    order).
    """

    def __init__(self, records: Sequence[Dict]) -> None:
        self.meta: Dict = {}
        self.summary: Dict = {}
        self.events: List[Dict] = []
        self._chains: Dict[str, CausalChain] = {}
        for record in records:
            kind = record.get("kind")
            if kind == "meta":
                self.meta = record
                continue
            if kind == "summary":
                self.summary = record
                continue
            self.events.append(record)
            cause = record.get("cause")
            if cause:
                chain = self._chains.get(cause)
                if chain is None:
                    chain = self._chains[cause] = CausalChain(cause)
                chain.events.append(record)

    def chains(self) -> List[CausalChain]:
        """Every causal chain, ordered by first event time."""
        return sorted(self._chains.values(), key=lambda c: (c.start, c.cause))

    def chain(self, cause: str) -> Optional[CausalChain]:
        return self._chains.get(cause)

    def causes(self) -> List[str]:
        return [chain.cause for chain in self.chains()]


def load_trace_graph(path: str) -> TraceGraph:
    """Build the :class:`TraceGraph` of a telemetry JSONL export."""
    from repro.telemetry.export import read_jsonl

    return TraceGraph(read_jsonl(path))


@dataclass
class FailoverBreakdown:
    """Critical-path decomposition of one take-over.

    ``detect_s + agree_s + redistribute_s == total_s`` (the take-over
    span duration) by construction: the three segments partition the
    span at the first suspicion and the first subsequent view install.
    ``resume_s`` is the client-visible tail *after* the span — take-over
    admit to the first frame the client accepted from its new server —
    and is ``None`` when the export holds no ``client.resume`` (e.g. the
    run ended first).
    """

    cause: str
    client: str
    crash_t: float
    detect_s: float
    agree_s: float
    redistribute_s: float
    total_s: float
    resume_s: Optional[float] = None
    abandoned: bool = False

    def segments(self) -> List[tuple]:
        return [
            ("detect", self.detect_s),
            ("agree", self.agree_s),
            ("redistribute", self.redistribute_s),
        ]


def critical_path(chain: CausalChain, client: Optional[str] = None) -> List[Dict]:
    """The failover critical path within ``chain``, in time order.

    One representative event per stage: the initiating fault/crash, the
    first suspicion, the first view install after it, the take-over span
    close (``span.end``/``span.abandoned`` with ``span == takeover`` or
    ``rebalance``), the adopting ``server.session.start`` and the
    client's ``client.resume``.  Stages the export lacks are skipped.
    """

    def matches_client(event: Dict) -> bool:
        if client is None:
            return True
        value = event.get("key") or event.get("client") or ""
        return str(value).startswith(client.split("@")[0]) or str(value) == client

    path: List[Dict] = []
    # The fault record is the chain's true origin even though the
    # injector emits it after its handler (so the crash it caused sits
    # earlier in file order at the same timestamp).
    origin = chain.first("fault.") or chain.first(
        "server.crash", "server.shutdown"
    )
    if origin is not None:
        path.append(origin)
    suspect = chain.first("gcs.fd.suspect")
    if suspect is not None:
        path.append(suspect)
    install = None
    for event in chain.all("gcs.view.install"):
        if suspect is None or event["t"] >= suspect["t"]:
            install = event
            break
    if install is not None:
        path.append(install)
    for event in chain.events:
        if event.get("kind") in ("span.end", "span.abandoned") and event.get(
            "span"
        ) in ("takeover", "rebalance") and matches_client(event):
            path.append(event)
            break
    for kind in ("server.session.start", "client.resume"):
        for event in chain.events:
            if event.get("kind") == kind and matches_client(event):
                path.append(event)
                break
    return path


def failover_breakdowns(graph: TraceGraph) -> List[FailoverBreakdown]:
    """Extract one :class:`FailoverBreakdown` per closed handoff span.

    Walks every causal chain holding a ``takeover``/``rebalance`` span
    close, partitions the span at the chain's first suspicion and first
    view install, and attaches the client-visible resume tail.
    Boundary events missing from the chain (a forced suspicion with no
    crash, a rebalance with no suspicion) collapse their segment to the
    neighbouring boundary rather than failing.
    """
    out: List[FailoverBreakdown] = []
    for chain in graph.chains():
        closes = [
            event for event in chain.events
            if event.get("kind") in ("span.end", "span.abandoned")
            and event.get("span") in ("takeover", "rebalance")
        ]
        for close in closes:
            start = float(close.get("start", chain.start))
            end_t = float(close["t"])
            client = str(close.get("key", ""))

            suspect = chain.first("gcs.fd.suspect")
            suspect_t = (
                min(max(float(suspect["t"]), start), end_t)
                if suspect is not None else start
            )
            install_t = suspect_t
            for event in chain.all("gcs.view.install"):
                t = float(event["t"])
                if suspect_t <= t <= end_t:
                    install_t = t
                    break

            resume_s = None
            for event in chain.events:
                if event.get("kind") != "client.resume":
                    continue
                t = float(event["t"])
                if t >= end_t:
                    resume_s = t - end_t
                    break

            out.append(FailoverBreakdown(
                cause=chain.cause,
                client=client,
                crash_t=start,
                detect_s=suspect_t - start,
                agree_s=install_t - suspect_t,
                redistribute_s=end_t - install_t,
                total_s=float(close.get("duration_s", end_t - start)),
                resume_s=resume_s,
                abandoned=close.get("kind") == "span.abandoned",
            ))
    return out


def render_breakdowns(breakdowns: List[FailoverBreakdown]) -> str:
    """A text table of failover decompositions (``repro-vod report``)."""
    from repro.metrics.report import Table  # lazy: keeps import order simple

    table = Table(
        "Failover critical path (detect + agree + redistribute = take-over)",
        ["cause", "client", "at (s)", "detect (s)", "agree (s)",
         "redistribute (s)", "total (s)", "resume (s)"],
    )
    for item in breakdowns:
        table.add_row(
            item.cause,
            item.client,
            f"{item.crash_t:.3f}",
            f"{item.detect_s:.3f}",
            f"{item.agree_s:.3f}",
            f"{item.redistribute_s:.3f}",
            f"{item.total_s:.3f}" + (" (abandoned)" if item.abandoned else ""),
            "-" if item.resume_s is None else f"{item.resume_s:.3f}",
        )
    return table.render()
