"""The metric registry: counters, gauges and fixed-bucket histograms.

Metrics are the *aggregated* half of the observability API (events are
the per-occurrence half): cheap named accumulators that instrumented
code updates inside its ``if telemetry.active:`` guard and that the
JSONL exporter snapshots into the run summary.

Naming convention (see docs/TELEMETRY.md): dotted lowercase paths,
``<layer>.<subject>[.<detail>]`` — e.g. ``net.drop.loss``,
``server.rate_changes``, ``takeover.latency_s``.  Names ending in
``_s`` hold seconds; names ending in ``_bytes`` hold bytes.

This module must stay import-free of the rest of :mod:`repro` (the sim
kernel imports the telemetry bus, so anything here importing the kernel
would be a cycle).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

#: Default histogram bucket layout for latencies, in seconds.  Fixed at
#: registration time so two runs of the same scenario always export
#: comparable distributions.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class CounterMetric:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class GaugeMetric:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class HistogramMetric:
    """A fixed-bucket histogram (cumulative bucket counts).

    ``buckets`` are upper bounds; an implicit ``+inf`` bucket catches
    everything above the last bound.  The layout is frozen at
    registration so exports from different runs line up column for
    column.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +inf overflow
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[position] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricRegistry:
    """Process-wide named metrics, created lazily on first use.

    Re-registering a name returns the existing instrument; registering
    the same name as a different metric type raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def counter(self, name: str) -> CounterMetric:
        return self._get(name, CounterMetric, lambda: CounterMetric(name))

    def gauge(self, name: str) -> GaugeMetric:
        return self._get(name, GaugeMetric, lambda: GaugeMetric(name))

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> HistogramMetric:
        return self._get(
            name,
            HistogramMetric,
            lambda: HistogramMetric(name, buckets or DEFAULT_LATENCY_BUCKETS_S),
        )

    def _get(self, name, kind, build):
        metric = self._metrics.get(name)
        if metric is None:
            metric = build()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def names(self):
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable dump of every registered metric.

        Strictly JSON: non-finite gauge/histogram values (NaN, ±inf —
        e.g. a gauge tracking a ratio whose denominator was zero) export
        as ``null`` rather than producing the invalid-JSON ``NaN`` token
        that strict parsers reject.
        """
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, CounterMetric):
                out[name] = metric.value
            elif isinstance(metric, GaugeMetric):
                out[name] = _finite_or_none(metric.value)
            else:
                hist = metric
                out[name] = {
                    "count": hist.count,
                    "total": _finite_or_none(hist.total),
                    "mean": _finite_or_none(hist.mean),
                    "buckets": list(hist.buckets),
                    "counts": list(hist.counts),
                }
        return out


def _finite_or_none(value: float) -> Optional[float]:
    return value if -_INF < value < _INF else None


_INF = float("inf")


#: Back-compat facade name: the registry *is* the metrics collector.
MetricsCollector = MetricRegistry
