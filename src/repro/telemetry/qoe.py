"""Per-client quality-of-experience scorecards, derived from the bus.

The paper's headline claim is *glitch-free playback through failures*;
a scorecard turns one client's event stream into the numbers that claim
is judged by: startup latency, stall (glitch) episodes and total stall
time, rebuffer ratio, skipped/late frames, migration count, emergency
refill episodes and the extra bandwidth they consumed.

The same accumulator works online (subscribe a :class:`QoECollector` to
a live bus) and offline (:func:`scorecards_from_timeline` over a parsed
JSONL export) — both consume only event ``(t, kind, fields)`` triples,
never simulator state, so a scorecard computed during the run equals
one recomputed from the artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


def _client_name(value: object) -> str:
    """Normalize the two client spellings to the short name.

    Client-side events carry ``client0``; server-side events carry the
    process id string ``client0@5``.  The short name keys everything.
    """
    return str(value).split("@", 1)[0]


@dataclass
class QoEScorecard:
    """One client's session, scored.

    ``score()`` folds the raw facts into a 0–100 figure of merit:
    start from 100, subtract up to 50 for rebuffering (50 × rebuffer
    ratio, the dominant QoE driver), 2 per stall episode (cap 20), up
    to 15 for skipped frames (15 × skip ratio) and 1 per migration
    (cap 5).  A glitch-free, migration-free session scores 100.
    """

    client: str
    movie: str = ""
    start_t: float = 0.0
    end_t: float = 0.0
    startup_s: Optional[float] = None
    stall_count: int = 0
    stall_s: float = 0.0
    skipped_frames: int = 0
    displayed_frames: int = 0
    late_frames: int = 0
    migrations: int = 0
    resumes: int = 0
    emergencies: int = 0
    emergency_extra_frames: float = 0.0
    admission_rejects: int = 0
    degrade_fraction: float = 0.0
    finished: bool = False

    @property
    def watch_s(self) -> float:
        return max(0.0, self.end_t - self.start_t)

    @property
    def rebuffer_ratio(self) -> float:
        return self.stall_s / self.watch_s if self.watch_s > 0 else 0.0

    @property
    def glitch_free(self) -> bool:
        return self.stall_count == 0

    @property
    def emergency_share(self) -> float:
        """Extra emergency bandwidth as a fraction of the mean rate.

        The paper budgets emergencies at <= 40% of the stream rate;
        this is the measured counterpart, averaged over the session.
        """
        if self.watch_s <= 0 or self.displayed_frames <= 0:
            return 0.0
        base_rate = self.displayed_frames / self.watch_s
        if base_rate <= 0:
            return 0.0
        return (self.emergency_extra_frames / self.watch_s) / base_rate

    def score(self) -> float:
        penalty = 50.0 * min(1.0, self.rebuffer_ratio)
        penalty += min(20.0, 2.0 * self.stall_count)
        shown = max(1, self.displayed_frames + self.skipped_frames)
        penalty += 15.0 * min(1.0, self.skipped_frames / shown)
        penalty += min(5.0, float(self.migrations))
        # Admission outcomes: each busy-signal reject delays the viewer
        # a retry round — being denied service repeatedly outweighs
        # watching a degraded stream, though rebuffering still dominates
        # — and a degraded grant costs by how much quality was shaved.
        # Without these a never-admitted client would score a perfect
        # 100.
        penalty += min(35.0, 3.0 * self.admission_rejects)
        penalty += min(10.0, 10.0 * max(0.0, self.degrade_fraction))
        return max(0.0, 100.0 - penalty)

    def as_dict(self) -> Dict:
        return {
            "client": self.client,
            "movie": self.movie,
            "watch_s": self.watch_s,
            "startup_s": self.startup_s,
            "stall_count": self.stall_count,
            "stall_s": self.stall_s,
            "rebuffer_ratio": self.rebuffer_ratio,
            "skipped_frames": self.skipped_frames,
            "displayed_frames": self.displayed_frames,
            "late_frames": self.late_frames,
            "migrations": self.migrations,
            "resumes": self.resumes,
            "emergencies": self.emergencies,
            "emergency_extra_frames": self.emergency_extra_frames,
            "emergency_share": self.emergency_share,
            "admission_rejects": self.admission_rejects,
            "degrade_fraction": self.degrade_fraction,
            "glitch_free": self.glitch_free,
            "finished": self.finished,
            "score": self.score(),
        }


class QoEAccumulator:
    """Feeds ``(t, kind, fields)`` triples into per-client scorecards."""

    def __init__(self) -> None:
        self._cards: Dict[str, QoEScorecard] = {}
        # Open stall episode start per client.
        self._stall_since: Dict[str, float] = {}
        # Emergency bandwidth integration state per client:
        # (last event time, extra frames/s above base while refilling).
        self._rate_state: Dict[str, List[float]] = {}
        self._base_fps: Dict[str, float] = {}
        self._last_t = 0.0

    def card(self, client: str) -> QoEScorecard:
        name = _client_name(client)
        card = self._cards.get(name)
        if card is None:
            card = self._cards[name] = QoEScorecard(client=name)
        return card

    # ------------------------------------------------------------------
    # Event feed
    # ------------------------------------------------------------------
    def feed(self, t: float, kind: str, fields: Dict) -> None:
        self._last_t = max(self._last_t, t)
        if kind.startswith("client."):
            self._feed_client(t, kind, fields)
        elif kind.startswith("server.admission."):
            self._feed_admission(t, kind, fields)
        elif kind in ("server.rate", "server.emergency.step"):
            self._feed_rate(t, kind, fields)
        elif kind in ("span.begin", "span.end", "span.abandoned"):
            self._feed_span(t, kind, fields)
        elif kind == "metric.sample":
            # Keeps ``displayed_frames`` current for sessions that never
            # close cleanly (run ends mid-movie, span abandoned) — the
            # span.end counters, when they do arrive, agree with the
            # last sample.
            if fields.get("series") == "displayed_cumulative":
                card = self.card(fields.get("owner", "?"))
                card.displayed_frames = max(
                    card.displayed_frames,
                    int(float(fields.get("value", 0.0))),
                )

    def _feed_client(self, t: float, kind: str, fields: Dict) -> None:
        card = self.card(fields.get("client", "?"))
        card.end_t = max(card.end_t, t)
        if kind == "client.stall.begin":
            card.stall_count += 1
            self._stall_since[card.client] = t
        elif kind == "client.stall.end":
            since = self._stall_since.pop(card.client, None)
            if since is not None:
                card.stall_s += t - since
        elif kind == "client.skip":
            card.skipped_frames = int(fields.get("total", card.skipped_frames))
        elif kind == "client.migrate":
            # The first server adoption at startup also emits migrate
            # (from "None"); only mid-stream handoffs count against QoE.
            if str(fields.get("from_server")) not in ("None", ""):
                card.migrations += 1
        elif kind == "client.resume":
            card.resumes += 1
        elif kind == "client.playback.start":
            if card.startup_s is None:
                card.startup_s = t - card.start_t
        elif kind == "client.flow":
            if fields.get("message") == "emergency":
                card.emergencies += 1

    def _feed_admission(self, t: float, kind: str, fields: Dict) -> None:
        # Only policy outcomes carry a client; other server.admission.*
        # events (e.g. the view-settle queue's drain) are not per-client.
        if kind not in (
            "server.admission.reject", "server.admission.degrade",
        ):
            return
        card = self.card(fields.get("client", "?"))
        card.end_t = max(card.end_t, t)
        if kind == "server.admission.reject":
            card.admission_rejects += 1
        else:
            granted = float(fields.get("quality_fps", 0.0))
            base = float(fields.get("base_fps", 0.0))
            if base > 0:
                card.degrade_fraction = max(0.0, 1.0 - granted / base)

    def _feed_rate(self, t: float, kind: str, fields: Dict) -> None:
        card = self.card(fields.get("client", "?"))
        name = card.client
        self._integrate_extra(name, t)
        rate = float(fields.get("rate_fps", 0.0))
        if kind == "server.rate":
            self._base_fps[name] = float(fields.get("base_fps", rate))
            refilling = float(fields.get("emergency", 0.0)) > 0
        else:  # server.emergency.step
            refilling = float(fields.get("quantity", 0.0)) > 0
        base = self._base_fps.get(name, rate)
        extra = max(0.0, rate - base) if refilling else 0.0
        self._rate_state[name] = [t, extra]

    def _integrate_extra(self, name: str, t: float) -> None:
        state = self._rate_state.get(name)
        if state is not None and t > state[0] and state[1] > 0:
            self.card(name).emergency_extra_frames += (t - state[0]) * state[1]
        if state is not None:
            state[0] = t

    def _feed_span(self, t: float, kind: str, fields: Dict) -> None:
        if fields.get("span") != "client.session":
            return
        card = self.card(fields.get("key", "?"))
        if kind == "span.begin":
            card.start_t = t
            card.end_t = max(card.end_t, t)
            card.movie = str(fields.get("movie", card.movie))
        else:
            card.end_t = max(card.end_t, t)
            card.finished = kind == "span.end"
            card.displayed_frames = int(
                fields.get("displayed", card.displayed_frames)
            )
            card.late_frames = int(fields.get("late", card.late_frames))
            card.skipped_frames = int(
                fields.get("skipped", card.skipped_frames)
            )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def finish(self, end_t: Optional[float] = None) -> Dict[str, QoEScorecard]:
        """Settle open episodes at ``end_t`` and return the scorecards."""
        t = self._last_t if end_t is None else max(end_t, self._last_t)
        for name, since in list(self._stall_since.items()):
            self._cards[name].stall_s += t - since
            self._stall_since[name] = t
        for name in list(self._rate_state):
            self._integrate_extra(name, t)
        for card in self._cards.values():
            card.end_t = max(card.end_t, t)
        return dict(self._cards)

    def scorecards(self) -> Dict[str, QoEScorecard]:
        return dict(self._cards)


#: Bus prefixes a QoE observer needs (everything else is noise to it).
QOE_PREFIXES = (
    "client.", "server.rate", "server.emergency", "server.admission",
    "span.", "metric.sample",
)


class QoECollector:
    """Online scorecard builder: subscribe, run, :meth:`finish`."""

    def __init__(self, telemetry) -> None:
        self.telemetry = telemetry
        self.accumulator = QoEAccumulator()
        self._subscription = telemetry.subscribe(
            self._on_event, prefixes=QOE_PREFIXES
        )

    def _on_event(self, event) -> None:
        self.accumulator.feed(event.time, event.kind, event.fields)

    def finish(self, end_t: Optional[float] = None) -> Dict[str, QoEScorecard]:
        self._subscription.close()
        return self.accumulator.finish(end_t)


def scorecards_from_timeline(timeline) -> Dict[str, QoEScorecard]:
    """Offline scorecards from a parsed export (``repro-vod report``)."""
    accumulator = QoEAccumulator()
    last_t = 0.0
    for event in timeline.events:
        t = float(event.get("t", 0.0))
        last_t = max(last_t, t)
        fields = {
            k: v for k, v in event.items() if k not in ("t", "kind")
        }
        accumulator.feed(t, str(event.get("kind", "")), fields)
    return accumulator.finish(last_t)


def render_scorecards(cards: Dict[str, QoEScorecard]) -> str:
    """A text table of QoE scorecards, worst score first."""
    from repro.metrics.report import Table  # lazy: keeps import order simple

    table = Table(
        "Per-client QoE scorecards",
        ["client", "score", "startup (s)", "stalls", "stall (s)",
         "rebuffer", "skipped", "migr", "emerg", "extra (fr)", "glitch-free"],
    )
    ordered = sorted(cards.values(), key=lambda c: (c.score(), c.client))
    for card in ordered:
        table.add_row(
            card.client,
            f"{card.score():.1f}",
            "-" if card.startup_s is None else f"{card.startup_s:.2f}",
            card.stall_count,
            f"{card.stall_s:.2f}",
            f"{card.rebuffer_ratio:.3f}",
            card.skipped_frames,
            card.migrations,
            card.emergencies,
            f"{card.emergency_extra_frames:.0f}",
            "yes" if card.glitch_free else "NO",
        )
    return table.render()
