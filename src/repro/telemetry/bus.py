"""The process-wide telemetry event bus.

One :class:`Telemetry` instance lives on every
:class:`~repro.sim.core.Simulator` (``sim.telemetry``); every layer —
kernel, network, GCS, server, client, fault injector — emits typed
events through it.  Design constraints, in priority order:

1. **Disabled cost is one predicate check.**  Instrumented sites guard
   with ``if tel.active:`` where ``active`` is a plain attribute kept in
   sync with the subscriber list.  With no subscribers nothing is
   formatted, allocated or dispatched.
2. **Emission never perturbs the simulation.**  ``emit`` draws no
   random numbers and schedules no events, so a run with full telemetry
   is event-for-event identical to a run without (same seed).
3. **Subscribers are push-based.**  A subscriber is a callable invoked
   synchronously with each :class:`TelemetryEvent`; kind-prefix filters
   keep high-frequency kernel/network events out of subscribers that do
   not want them.

This module must not import the rest of :mod:`repro` (the sim kernel
imports it — anything else would be an import cycle).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import MetricRegistry
from repro.telemetry.spans import Span

SubscriberFn = Callable[["TelemetryEvent"], None]


class TelemetryEvent:
    """One structured event: virtual time, dotted kind, payload fields."""

    __slots__ = ("time", "kind", "fields")

    def __init__(self, time: float, kind: str, fields: dict) -> None:
        self.time = time
        self.kind = kind
        self.fields = fields

    def as_dict(self) -> dict:
        """Flat JSON-friendly form (used by the JSONL exporter).

        ``t`` and ``kind`` are reserved: a payload field with either
        name cannot shadow the record's time or event kind.
        """
        out = dict(self.fields)
        out["t"] = self.time
        out["kind"] = self.kind
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TelemetryEvent t={self.time:.6f} {self.kind} {self.fields}>"


class Subscription:
    """Handle returned by :meth:`Telemetry.subscribe`; ``close()`` detaches."""

    __slots__ = ("_telemetry", "callback", "prefixes", "closed")

    def __init__(self, telemetry, callback, prefixes) -> None:
        self._telemetry = telemetry
        self.callback = callback
        self.prefixes = prefixes
        self.closed = False

    def wants(self, kind: str) -> bool:
        if self.prefixes is None:
            return True
        return kind.startswith(self.prefixes)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._telemetry._unsubscribe(self)


class Telemetry:
    """The event bus + metric registry + open-span registry.

    ``active`` is the single public predicate instrumented code checks
    before doing any telemetry work::

        tel = self.sim.telemetry
        if tel.active:
            tel.emit("net.drop", link=self.rng_name, reason="loss")

    ``active`` is True exactly while at least one subscriber is
    attached; everything else (metric updates, span bookkeeping, field
    construction) belongs inside the guard.
    """

    def __init__(self, clock: Callable[[], float] = None) -> None:
        #: The one-predicate-check fast path.  Plain attribute, not a
        #: property: reading it must not involve a function call.
        self.active = False
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.metrics = MetricRegistry()
        #: Events emitted over this bus's lifetime (diagnostics).
        self.emitted = 0
        #: The ambient cause id: while a causal episode executes
        #: synchronously (a fault handler, a view installation), the
        #: initiating site sets this and every emission in between can
        #: tag itself with it.  Touched only inside ``if active:``
        #: guards, so the disabled path never reads or writes it.
        self.cause: Optional[str] = None
        self._cause_seq = 0
        #: Latest cause attributed to an entity ("node:3",
        #: "client:client0@5"): how a cause survives *asynchronous*
        #: boundaries — a crash attributes its node, and the failure
        #: detector's later suspicion looks the cause back up.
        self._cause_of: Dict[str, str] = {}
        self._subscribers: List[Subscription] = []
        self._open_spans: Dict[Tuple[str, str], Span] = {}

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(
        self,
        callback: SubscriberFn,
        prefixes: Optional[Sequence[str]] = None,
    ) -> Subscription:
        """Attach ``callback``; it runs synchronously per matching event.

        ``prefixes`` restricts delivery to kinds starting with any of
        the given dotted prefixes (``("client.", "span.")``); ``None``
        delivers everything.
        """
        cleaned = None if prefixes is None else tuple(prefixes)
        subscription = Subscription(self, callback, cleaned)
        self._subscribers.append(subscription)
        self.active = True
        return subscription

    def collect(
        self, prefixes: Optional[Sequence[str]] = None
    ) -> Tuple[List[TelemetryEvent], Subscription]:
        """Convenience: subscribe an in-memory list (tests, small runs)."""
        events: List[TelemetryEvent] = []
        subscription = self.subscribe(events.append, prefixes=prefixes)
        return events, subscription

    def _unsubscribe(self, subscription: Subscription) -> None:
        try:
            self._subscribers.remove(subscription)
        except ValueError:
            pass
        self.active = bool(self._subscribers)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields) -> None:
        """Publish one event to every matching subscriber.

        Call only inside an ``if telemetry.active:`` guard — emitting on
        an inactive bus is wasted work (the event goes nowhere) though
        it is harmless and still deterministic.
        """
        event = TelemetryEvent(self.clock(), kind, fields)
        self.emitted += 1
        for subscription in self._subscribers:
            if subscription.wants(kind):
                subscription.callback(event)

    def count(self, name: str, amount: int = 1) -> None:
        """Shorthand: bump the registry counter ``name``."""
        self.metrics.counter(name).inc(amount)

    # ------------------------------------------------------------------
    # Causal tracing (see repro.telemetry.causal for reconstruction)
    # ------------------------------------------------------------------
    def new_cause(self, label: str) -> str:
        """Mint a deterministic cause id (``label#N``).

        Ids are sequence-numbered per bus, so a fixed seed yields the
        same ids in the same order run after run.  Call only inside an
        ``if active:`` guard — causes exist purely for observers.
        """
        self._cause_seq += 1
        return f"{label}#{self._cause_seq}"

    def attribute(self, entity: str, cause: str) -> None:
        """Record that ``entity`` is currently affected by ``cause``.

        Entities are small dotted strings chosen by the instrumented
        sites (``node:<daemon>``, ``client:<process>``); attribution is
        last-write-wins.  This is how a cause crosses asynchronous
        boundaries: the crash handler attributes the dead node, and the
        failure detector's suspicion minutes of virtual time later looks
        it back up with :meth:`cause_for`.
        """
        self._cause_of[entity] = cause

    def cause_for(self, *entities: str) -> Optional[str]:
        """The most recent cause attributed to any of ``entities``.

        Falls back to the ambient :attr:`cause` when no entity matches,
        so synchronous call chains need no attribution at all.
        """
        for entity in entities:
            cause = self._cause_of.get(entity)
            if cause is not None:
                return cause
        return self.cause

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, kind: str, key: str = "", **attrs) -> Span:
        """Open a span; emits ``span.begin`` and registers it by
        ``(kind, key)`` so another component can close it later via
        :meth:`open_span` / :meth:`end_span`."""
        span = Span(self, kind, key, self.clock(), attrs)
        self._open_spans[(kind, key)] = span
        if self.active:
            self.emit("span.begin", span=kind, key=key, **attrs)
        return span

    def open_span(self, kind: str, key: str = "") -> Optional[Span]:
        """The currently open span registered under ``(kind, key)``."""
        return self._open_spans.get((kind, key))

    def end_span(self, kind: str, key: str = "", **attrs) -> Optional[float]:
        """Close the registered ``(kind, key)`` span, if any.

        Returns the duration, or ``None`` when no such span is open —
        the closing component often cannot know whether the opener ran
        (e.g. a takeover adopt when telemetry was enabled mid-run).
        """
        span = self._open_spans.get((kind, key))
        if span is None:
            return None
        return span.end(**attrs)

    def open_spans(self) -> List[Span]:
        return list(self._open_spans.values())

    def abandon_open_spans(self, reason: str = "run-end") -> List[Span]:
        """Close every still-open span via :meth:`Span.abandon`.

        Called at simulation teardown (the JSONL exporter does it before
        writing its summary) so crash scenarios do not silently lose
        takeover/session spans: each emits ``span.abandoned`` with its
        duration so far.  Returns the spans that were abandoned.
        """
        spans = list(self._open_spans.values())
        for span in spans:
            span.abandon(reason=reason)
        return spans

    def _forget_span(self, span: Span) -> None:
        registered = self._open_spans.get((span.kind, span.key))
        if registered is span:
            del self._open_spans[(span.kind, span.key)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Telemetry active={self.active} "
            f"subscribers={len(self._subscribers)} emitted={self.emitted}>"
        )
