"""Unified observability for the VoD reproduction (the public API).

Everything observable about a run flows through this package:

* :class:`Telemetry` — the per-simulator event bus (``sim.telemetry``)
  with typed, dotted-kind events from every layer (``client.*``,
  ``server.*``, ``gcs.*``, ``net.*``, ``fault.*``, ``sim.*``);
* :class:`MetricRegistry` — counters, gauges and fixed-bucket
  histograms, snapshotted into every export;
* :class:`Span` — interval tracing (client sessions, takeovers,
  rebalances) with cross-component open/end via ``(kind, key)``;
* :class:`Probe` / :class:`TimeSeries` — periodic state sampling
  (buffer levels), bridged onto the bus as ``metric.sample`` events;
* :class:`Tracer` — the exhaustive kernel event trace;
* :class:`JsonlExporter` / :func:`render_report` — JSONL artifacts and
  the ``repro-vod trace`` / ``repro-vod report`` CLI behind them;
* :class:`TraceGraph` / :func:`failover_breakdowns` — causal chains
  (the ``cause`` id threaded fault → view change → take-over → resume)
  and the failover critical-path decomposition built from them;
* :class:`QoECollector` / :class:`QoEScorecard` — per-client
  quality-of-experience scoring, online or from an export;
* :class:`SloMonitor` — live windowed service-level objectives
  (``slo.breach`` / ``slo.burn`` / ``slo.recover`` events);
* :class:`WatchState` / :func:`render_watch` — the ``repro-vod watch``
  terminal dashboard fold;
* :class:`FlightRecorder` / :class:`Incident` — bounded always-on
  capture (per-kind rings, deterministic sampling, trigger-scoped
  full-fidelity windows) rendered as postmortems by
  :func:`render_incidents` behind ``repro-vod postmortem``.

With no subscribers the whole subsystem costs one attribute check per
instrumented site, and enabling it never changes simulation outcomes
(same seed ⇒ same fault firings and client statistics, telemetry on or
off).  See ``docs/TELEMETRY.md`` for the event taxonomy.
"""

from repro.telemetry.bus import (
    Subscription,
    Telemetry,
    TelemetryEvent,
)
from repro.telemetry.causal import (
    CausalChain,
    FailoverBreakdown,
    TraceGraph,
    critical_path,
    failover_breakdowns,
    load_trace_graph,
    render_breakdowns,
)
from repro.telemetry.export import (
    DEFAULT_PREFIXES,
    FIREHOSE_PREFIXES,
    SCHEMA_VERSION,
    JsonlExporter,
    read_jsonl,
)
from repro.telemetry.flight import (
    ALWAYS_RETAIN_PREFIXES,
    FLIGHT_PREFIXES,
    FlightRecorder,
    FlightRecorderConfig,
    Incident,
    incidents_from_records,
    is_trigger,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricRegistry,
    MetricsCollector,
)
from repro.telemetry.qoe import (
    QoEAccumulator,
    QoECollector,
    QoEScorecard,
    render_scorecards,
    scorecards_from_timeline,
)
from repro.telemetry.postmortem import (
    incidents_from_export,
    render_incident,
    render_incidents,
)
from repro.telemetry.report import RunTimeline, load_timeline, render_report
from repro.telemetry.series import Counter, Probe, TimeSeries
from repro.telemetry.slo import (
    EmergencyBandwidthRule,
    FailoverLatencyRule,
    GlitchFreeRule,
    SloMonitor,
    SloRule,
    default_rules,
    render_slo,
    slo_from_timeline,
)
from repro.telemetry.spans import Span
from repro.telemetry.trace import Tracer, TraceRecord
from repro.telemetry.watch import WatchState, render_watch


def probe(sim, period: float = 0.25, owner: str = "") -> Probe:
    """Create a :class:`Probe` sampling on ``period`` seconds.

    Convenience constructor for the common case; ``owner`` tags the
    probe's ``metric.sample`` events (typically a client name).
    """
    return Probe(sim, period, owner=owner)


def __getattr__(name):
    # ClientStats lives with the player (it is filled by client logic)
    # but is part of the observability API; resolve it lazily because
    # importing the client here would cycle back through the sim kernel.
    if name == "ClientStats":
        from repro.client.player import ClientStats

        return ClientStats
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Telemetry",
    "TelemetryEvent",
    "Subscription",
    "Span",
    "Tracer",
    "TraceRecord",
    "Counter",
    "TimeSeries",
    "Probe",
    "probe",
    "MetricRegistry",
    "MetricsCollector",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "DEFAULT_LATENCY_BUCKETS_S",
    "JsonlExporter",
    "read_jsonl",
    "SCHEMA_VERSION",
    "DEFAULT_PREFIXES",
    "FIREHOSE_PREFIXES",
    "RunTimeline",
    "load_timeline",
    "render_report",
    "CausalChain",
    "TraceGraph",
    "FailoverBreakdown",
    "load_trace_graph",
    "critical_path",
    "failover_breakdowns",
    "render_breakdowns",
    "QoEAccumulator",
    "QoECollector",
    "QoEScorecard",
    "scorecards_from_timeline",
    "render_scorecards",
    "SloMonitor",
    "SloRule",
    "GlitchFreeRule",
    "FailoverLatencyRule",
    "EmergencyBandwidthRule",
    "default_rules",
    "slo_from_timeline",
    "render_slo",
    "FlightRecorder",
    "FlightRecorderConfig",
    "Incident",
    "FLIGHT_PREFIXES",
    "ALWAYS_RETAIN_PREFIXES",
    "is_trigger",
    "incidents_from_records",
    "incidents_from_export",
    "render_incident",
    "render_incidents",
    "WatchState",
    "render_watch",
    "ClientStats",
]
